#include "aml/harness/report.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace aml::harness {

namespace {

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string format_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // Integral doubles (the common case for counters) render exactly.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    return format_i64(static_cast<std::int64_t>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string git_rev() {
  // Environment first: tooling that regenerates committed BENCH_*.json (the
  // bench_smoke target, the CI diff job) pins AMLOCK_GIT_REV=committed so
  // the files stay byte-identical across revisions. The compile-time value
  // baked by CMake is the fallback for ad-hoc runs.
  if (const char* env = std::getenv("AMLOCK_GIT_REV")) return env;
#ifdef AMLOCK_GIT_REV
  return AMLOCK_GIT_REV;
#else
  return "unknown";
#endif
}

BenchReport& BenchReport::config(const std::string& key, std::uint64_t v) {
  config_.push_back({key, {Value::Kind::kNumber, format_u64(v)}});
  return *this;
}
BenchReport& BenchReport::config(const std::string& key, std::int64_t v) {
  config_.push_back({key, {Value::Kind::kNumber, format_i64(v)}});
  return *this;
}
BenchReport& BenchReport::config(const std::string& key, double v) {
  config_.push_back({key, {Value::Kind::kNumber, json_number(v)}});
  return *this;
}
BenchReport& BenchReport::config(const std::string& key,
                                 const std::string& v) {
  config_.push_back({key, {Value::Kind::kString, v}});
  return *this;
}
BenchReport& BenchReport::config(const std::string& key, const char* v) {
  return config(key, std::string(v));
}

BenchReport& BenchReport::sample(const std::string& series, double v) {
  for (auto& [name, vs] : samples_) {
    if (name == series) {
      vs.push_back(json_number(v));
      return *this;
    }
  }
  samples_.push_back({series, {json_number(v)}});
  return *this;
}

BenchReport& BenchReport::samples(const std::string& series,
                                  const std::vector<double>& vs) {
  for (const double v : vs) sample(series, v);
  return *this;
}

BenchReport& BenchReport::samples(const std::string& series,
                                  const std::vector<std::uint64_t>& vs) {
  for (const std::uint64_t v : vs) sample(series, static_cast<double>(v));
  return *this;
}

BenchReport& BenchReport::summary(const std::string& key, double v) {
  summary_.push_back({key, {Value::Kind::kNumber, json_number(v)}});
  return *this;
}
BenchReport& BenchReport::summary(const std::string& key, std::uint64_t v) {
  summary_.push_back({key, {Value::Kind::kNumber, format_u64(v)}});
  return *this;
}
BenchReport& BenchReport::summary(const std::string& key, const Summary& s) {
  summary(key + "_count", s.count);
  summary(key + "_min", s.min);
  summary(key + "_max", s.max);
  summary(key + "_mean", s.mean);
  summary(key + "_p50", s.p50);
  summary(key + "_p90", s.p90);
  summary(key + "_p99", s.p99);
  return *this;
}

BenchReport& BenchReport::table(const Table& t) {
  tables_.push_back({t.title(), t.header_row(), t.row_data()});
  return *this;
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"" << json_escape(name_) << "\",\n";
  os << "  \"git_rev\": \"" << json_escape(git_rev()) << "\",\n";

  auto emit_object = [&os](const char* key, const std::vector<Entry>& entries,
                           bool trailing_comma) {
    os << "  \"" << key << "\": {";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i != 0) os << ",";
      os << "\n    \"" << json_escape(entries[i].first) << "\": ";
      if (entries[i].second.kind == Value::Kind::kString) {
        os << "\"" << json_escape(entries[i].second.text) << "\"";
      } else {
        os << entries[i].second.text;
      }
    }
    if (!entries.empty()) os << "\n  ";
    os << "}" << (trailing_comma ? "," : "") << "\n";
  };

  emit_object("config", config_, true);

  os << "  \"samples\": {";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n    \"" << json_escape(samples_[i].first) << "\": [";
    const auto& vs = samples_[i].second;
    for (std::size_t j = 0; j < vs.size(); ++j) {
      if (j != 0) os << ", ";
      os << vs[j];
    }
    os << "]";
  }
  if (!samples_.empty()) os << "\n  ";
  os << "},\n";

  emit_object("summary", summary_, true);

  os << "  \"tables\": [";
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    const auto& t = tables_[i];
    if (i != 0) os << ",";
    os << "\n    {\"title\": \"" << json_escape(t.title)
       << "\", \"headers\": [";
    for (std::size_t j = 0; j < t.headers.size(); ++j) {
      if (j != 0) os << ", ";
      os << "\"" << json_escape(t.headers[j]) << "\"";
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      if (r != 0) os << ", ";
      os << "[";
      for (std::size_t c = 0; c < t.rows[r].size(); ++c) {
        if (c != 0) os << ", ";
        os << "\"" << json_escape(t.rows[r][c]) << "\"";
      }
      os << "]";
    }
    os << "]}";
  }
  if (!tables_.empty()) os << "\n  ";
  os << "]\n";
  os << "}\n";
  return os.str();
}

std::string BenchReport::write() const {
  std::string dir = ".";
  if (const char* env = std::getenv("AMLOCK_BENCH_DIR")) {
    if (*env != '\0') dir = env;
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "[report] cannot open " << path << " for writing\n";
    return "";
  }
  out << to_json();
  if (!out) {
    std::cerr << "[report] short write to " << path << "\n";
    return "";
  }
  std::cout << "[report] wrote " << path << "\n";
  return path;
}

}  // namespace aml::harness
