// Small threading utilities for tests and the native benchmarking harness.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "aml/pal/backoff.hpp"

namespace aml::pal {

/// Reusable spin barrier: all participants block until `count` arrive.
/// Used to start benchmark phases simultaneously.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t count) : count_(count) {}

  void arrive_and_wait() {
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
    } else {
      Backoff backoff;
      while (phase_.load(std::memory_order_acquire) == phase) backoff.pause();
    }
  }

 private:
  const std::uint32_t count_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

/// Spawn `n` threads running fn(thread_index) and join them all. The
/// canonical driver for native stress tests.
inline void run_threads(std::uint32_t n,
                        const std::function<void(std::uint32_t)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) threads.emplace_back(fn, i);
  for (auto& t : threads) t.join();
}

}  // namespace aml::pal
