// aml::edges — the memory-ordering justification vocabulary.
//
// Every atomic operation in the covered paths (src/aml/core, src/aml/table,
// src/aml/ipc, src/aml/model/native.hpp) that uses an order weaker than
// seq_cst must carry one of these annotations; amlint rule R8 enforces the
// presence and rule R9 validates the cross-file pairing against the checked-
// in manifest (tools/edges.toml). The discipline follows rmc-compiler's
// XEDGE/VEDGE style (execution/visibility edges; see SNIPPETS.md): a
// relaxation is never folklore — it names the happens-before edge it is an
// endpoint of, and the manifest records the invariant the edge carries.
//
//   AML_V_EDGE(name)  — the *release* (visibility) endpoint of edge `name`:
//                       everything sequenced before this operation becomes
//                       visible to whoever acquires the edge. Must sit on a
//                       release-capable operation (store / RMW with
//                       release, acq_rel or seq_cst order).
//   AML_X_EDGE(name)  — the *acquire* (execution) endpoint of edge `name`:
//                       everything sequenced after this operation executes
//                       after whatever the paired release published. Must
//                       sit on an acquire-capable operation (load / wait /
//                       RMW with acquire, acq_rel or seq_cst order).
//   AML_RELAXED(why)  — a deliberately unordered operation (counters,
//                       diagnostics, pre-publication initialization, values
//                       re-validated by a later seq_cst RMW). Not an edge
//                       endpoint; the free-text reason is the justification.
//
// The macros expand to nothing — they are comments the checker can see.
// amlint matches the annotation token in the *original* source text on the
// operation's line or the two lines above it, so both the macro form
//
//     AML_V_EDGE(oneshot.grant);
//     ord::write_rel(space, self, word, 1);
//
// and the trailing-comment form
//
//     ord::write_rel(space, self, word, 1);  // AML_V_EDGE(oneshot.grant)
//
// are equivalent. Prefer the trailing comment; use the statement form when
// the call spans lines and the tag would otherwise drift out of range.
//
// Adding a new edge: docs/MEMORY_MODEL.md walks through the full checklist
// (name it, tag both endpoints, add the tools/edges.toml entry with its
// invariant, and give it a litmus test in tests/litmus/).
#pragma once

// NOLINTBEGIN(cppcoreguidelines-macro-usage): annotations must survive to
// the token level so a text-scanning checker can see them; a constexpr
// function would vanish.
#define AML_X_EDGE(name) /* execution edge endpoint: name */
#define AML_V_EDGE(name) /* visibility edge endpoint: name */
#define AML_RELAXED(why) /* deliberately unordered: why */
// NOLINTEND(cppcoreguidelines-macro-usage)
