// Platform abstraction layer: build configuration and assertion macros.
//
// AML_ASSERT is an always-on invariant check used on cold paths (construction,
// test probes). AML_DASSERT compiles away in release builds and is used on hot
// paths inside the lock algorithms to validate paper invariants (e.g. that a
// Remove() never sets an already-set tree bit).
#pragma once

#include <cstdio>
#include <cstdlib>

#define AML_ASSERT(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AML_ASSERT failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define AML_DASSERT(cond, msg) AML_ASSERT(cond, msg)
#else
#define AML_DASSERT(cond, msg) \
  do {                         \
  } while (0)
#endif

namespace aml {

/// Library version, mirrored from the CMake project version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 1;

}  // namespace aml
