// Cacheline utilities: padding wrappers to avoid false sharing between
// per-process counters and between lock words that the algorithms assume are
// independently cacheable.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace aml::pal {

/// Cache line size assumed throughout. std::hardware_destructive_interference_
/// size is not reliably available on every toolchain; 64 is correct for all
/// mainstream x86/ARM server parts.
inline constexpr std::size_t kCacheLine = 64;

/// A T padded and aligned to a full cache line.
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }

 private:
  // Guarantee the next element of an array starts on a fresh line even if
  // sizeof(T) % kCacheLine == 0 handled by alignas; char pad for clarity.
  static_assert(alignof(T) <= kCacheLine, "over-aligned payload");
};

}  // namespace aml::pal
