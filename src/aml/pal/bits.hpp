// W-bit word bit-manipulation helpers used by the Tree data structure
// (Section 4 of the paper).
//
// The paper's convention: a node stores a W-bit word whose j-th *most
// significant* bit (counting from the left, 0-based) is associated with the
// node's j-th child from the left. We call j the "offset". A logical W-bit
// word is stored in the low W bits of a uint64_t; offset o therefore maps to
// machine bit position (W - 1 - o) counting from the least significant bit.
//
// All helpers are constexpr and total for 2 <= W <= 64; offsets may be -1,
// meaning "consider the whole word" (used by AdaptiveFindNext after a
// sidestep to a right cousin, Algorithm 4.3 line 47).
#pragma once

#include <bit>
#include <cstdint>

#include "aml/pal/config.hpp"

namespace aml::pal {

/// EMPTY: the all-ones W-bit word, 2^W - 1 (paper, Figure 3 footnotes).
constexpr std::uint64_t empty_word(unsigned w) {
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
}

/// Mask with only the `offset`-th MSB (of a W-bit word) set.
/// Used by Remove() to build the F&A addend (Algorithm 4.2, line 38).
constexpr std::uint64_t offset_mask(unsigned w, unsigned offset) {
  return std::uint64_t{1} << (w - 1 - offset);
}

/// Mask covering every offset strictly to the right of `offset`
/// (i.e. offsets offset+1 .. W-1). offset == -1 covers the whole word;
/// offset == W-1 yields the empty mask.
constexpr std::uint64_t right_of_mask(unsigned w, int offset) {
  if (offset < 0) return empty_word(w);
  unsigned bits_right = w - 1 - static_cast<unsigned>(offset);
  return bits_right == 0 ? 0 : ((std::uint64_t{1} << bits_right) - 1);
}

/// HasZeroToTheRight(snap, offset): true iff some bit strictly to the right
/// of `offset` is zero (paper, Figure 3 footnotes).
constexpr bool has_zero_to_the_right(std::uint64_t snap, unsigned w,
                                     int offset) {
  const std::uint64_t region = right_of_mask(w, offset);
  return (snap & region) != region;
}

/// GetFirstZeroToTheRight(snap, offset): the offset of the leftmost zero bit
/// strictly to the right of `offset`. Precondition: such a bit exists.
constexpr unsigned first_zero_to_the_right(std::uint64_t snap, unsigned w,
                                           int offset) {
  const std::uint64_t region = right_of_mask(w, offset);
  const std::uint64_t zeros = ~snap & region;
  AML_DASSERT(zeros != 0, "no zero bit to the right of offset");
  // The leftmost zero has the highest machine bit position.
  const unsigned pos =
      63u - static_cast<unsigned>(std::countl_zero(zeros));
  return w - 1 - pos;
}

/// GetFirstZero(snap): offset of the leftmost zero bit in the W-bit word.
/// Precondition: snap != EMPTY.
constexpr unsigned first_zero(std::uint64_t snap, unsigned w) {
  return first_zero_to_the_right(snap, w, -1);
}

/// Number of set bits inside the W-bit region (test/introspection helper).
constexpr unsigned popcount_w(std::uint64_t snap, unsigned w) {
  return static_cast<unsigned>(std::popcount(snap & empty_word(w)));
}

/// Bit value (0/1) at `offset` in a W-bit word (test/introspection helper).
constexpr unsigned bit_at(std::uint64_t snap, unsigned w, unsigned offset) {
  return static_cast<unsigned>((snap >> (w - 1 - offset)) & 1u);
}

/// ceil(log_w(n)) for n >= 1, w >= 2: the tree height H (Section 4).
constexpr unsigned ceil_log(std::uint64_t n, unsigned w) {
  unsigned h = 0;
  std::uint64_t reach = 1;
  while (reach < n) {
    // reach * w can overflow only when reach already exceeds any realistic n.
    if (reach > (~std::uint64_t{0}) / w) return h + 1;
    reach *= w;
    ++h;
  }
  return h;
}

/// w^e with saturation (geometry helper; never overflows in practice since
/// e <= H <= 64).
constexpr std::uint64_t pow_sat(unsigned w, unsigned e) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < e; ++i) {
    if (r > (~std::uint64_t{0}) / w) return ~std::uint64_t{0};
    r *= w;
  }
  return r;
}

}  // namespace aml::pal
