// Deterministic pseudo-random number generation for schedules and workloads.
// SplitMix64 for seeding, xoshiro256** for the stream: fast, reproducible,
// and independent of libstdc++'s distribution implementations (so a seed
// produces the same schedule on every platform).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace aml::pal {

/// SplitMix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference constants).
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) {
    for (auto& word : s_) word = splitmix64(seed);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire-style rejection-free mapping
  /// (slight modulo bias is irrelevant for schedule generation; we use the
  /// multiply-shift trick which has none for bound << 2^64).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Bernoulli(p) with p expressed in parts-per-million.
  constexpr bool chance_ppm(std::uint64_t ppm) { return below(1000000) < ppm; }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Zipfian sampler over [0, n): P(k) proportional to 1/(k+1)^theta. The
/// standard skewed-key workload for lock-manager benchmarks (theta ~ 0.99 is
/// the YCSB default; theta = 0 degenerates to uniform). Sampling inverts the
/// precomputed CDF by binary search — O(log n), allocation-free after
/// construction, and exactly reproducible from the generator's seed (the
/// CDF depends only on (n, theta), and libm's pow is deterministic for our
/// purposes on a fixed platform; the benches additionally pin n and theta).
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double theta) : cdf_(n) {
    double sum = 0;
    for (std::uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[k] = sum;
    }
    for (std::uint64_t k = 0; k < n; ++k) cdf_[k] /= sum;
  }

  std::uint64_t operator()(Xoshiro256& rng) const {
    const double u = rng.uniform();
    // First k with cdf_[k] > u.
    std::uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] > u) hi = mid;
      else lo = mid + 1;
    }
    return lo;
  }

  std::uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace aml::pal
