// Deterministic pseudo-random number generation for schedules and workloads.
// SplitMix64 for seeding, xoshiro256** for the stream: fast, reproducible,
// and independent of libstdc++'s distribution implementations (so a seed
// produces the same schedule on every platform).
#pragma once

#include <cstdint>

namespace aml::pal {

/// SplitMix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference constants).
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) {
    for (auto& word : s_) word = splitmix64(seed);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire-style rejection-free mapping
  /// (slight modulo bias is irrelevant for schedule generation; we use the
  /// multiply-shift trick which has none for bound << 2^64).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Bernoulli(p) with p expressed in parts-per-million.
  constexpr bool chance_ppm(std::uint64_t ppm) { return below(1000000) < ppm; }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace aml::pal
