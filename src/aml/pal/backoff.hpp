// Spin-wait backoff. On the single atomic-word spins the paper's algorithms
// perform, the coherence protocol already bounds RMRs; backoff here only
// reduces wasted cycles under oversubscription (more threads than cores).
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace aml::pal {

/// One CPU relax hint (PAUSE on x86, YIELD on arm, nothing elsewhere).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Portable fallback: a compiler barrier.
  asm volatile("" ::: "memory");
#endif
}

/// Exponential backoff that escalates to std::this_thread::yield() so that
/// spinners make progress on machines with fewer cores than threads (this
/// matters: the test machine may have a single core).
class Backoff {
 public:
  void pause() {
    if (spins_ < kYieldThreshold) {
      for (std::uint32_t i = 0; i < (1u << spins_); ++i) cpu_relax();
      ++spins_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

 private:
  static constexpr std::uint32_t kYieldThreshold = 6;
  std::uint32_t spins_ = 0;
};

}  // namespace aml::pal
