// aml::AbortableLock — the deployable, native-hardware instantiation of the
// paper's long-lived abortable lock (quickstart API).
//
//   aml::AbortableLock lock(aml::LockConfig{.max_threads = 8});
//   aml::AbortSignal signal;
//   if (lock.enter(tid, signal)) {   // blocks; false <=> aborted
//     ... critical section ...
//     lock.exit(tid);
//   }
//
// Each participating thread must use a distinct id in [0, max_threads).
// enter() returns false only if the signal was raised; it may return true
// even when the signal is up (the hand-off won the race — footnote 2 of the
// paper). AbortSignal is level-triggered: reset() it before reuse.
//
// On 64-bit hardware W = 64, so the RMR cost of a passage is
// O(log_64 A) — at most 3 cache-line transfers of tree traversal even at
// tens of thousands of threads, and O(1) when nobody aborts.
#pragma once

#include <atomic>
#include <cstdint>

#include "aml/model/native.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/edges.hpp"
#include "aml/core/longlived.hpp"

namespace aml {

/// Level-triggered abort signal. May be raised by any thread (e.g. a timer,
/// a priority manager, a deadlock detector); observed by the waiter inside
/// enter().
class AbortSignal {
 public:
  /// Release so the waiter that observes the flag also sees everything the
  /// raiser did before raising (deadline bookkeeping, reason codes).
  void raise() { flag_.store(true, std::memory_order_release); }  // AML_V_EDGE(core.abort_signal)
  void reset() { flag_.store(false, std::memory_order_release); }  // AML_V_EDGE(core.abort_signal)
  bool raised() const { return flag_.load(std::memory_order_acquire); }  // AML_X_EDGE(core.abort_signal)

  /// The raw flag the lock's wait loops poll.
  const std::atomic<bool>* flag() const { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

struct LockConfig {
  std::uint32_t max_threads = 64;
  /// Tree arity. 64 (the full machine word) is the paper's W = Theta(N^eps)
  /// regime; smaller values are mainly useful for experiments.
  std::uint32_t tree_width = 64;
};

/// `Metrics` selects the observability sink (aml/obs/metrics.hpp). The
/// default NullMetrics is statically guaranteed zero-cost: the sink handles
/// embedded in the lock are empty and every hook is a static no-op, so the
/// native enter/exit hot paths carry no observability loads or stores.
///
/// `Model` selects the hardware memory model flavor: NativeModel (per-edge
/// acquire/release, the default) or NativeModelSeqCst (every edge lowered
/// to seq_cst — the A/B baseline bench_native_throughput gates against).
template <typename Metrics = obs::NullMetrics,
          typename Model = model::NativeModel>
class BasicAbortableLock {
 public:
  using MetricsSink = Metrics;
  using MemoryModel = Model;

  explicit BasicAbortableLock(LockConfig config = {})
      : model_(config.max_threads),
        lock_(model_, {.nprocs = config.max_threads,
                       .w = config.tree_width,
                       .find = core::Find::kAdaptive}) {}

  BasicAbortableLock(const BasicAbortableLock&) = delete;
  BasicAbortableLock& operator=(const BasicAbortableLock&) = delete;

  /// Bind an observability sink (no-op for the NullMetrics default). Call
  /// before the participating threads start.
  void set_metrics(Metrics* sink) { lock_.set_metrics(sink); }

  /// Acquire the lock. Returns false iff the attempt was abandoned because
  /// `signal` was raised while waiting. Starvation-free when no signal is
  /// raised; bounded abort when one is.
  bool enter(std::uint32_t thread_id, const AbortSignal& signal) {
    return lock_.enter(thread_id, signal.flag()).acquired;
  }

  /// Acquire without abort support. An unsignalled attempt cannot observe a
  /// stop flag, so enter() can only legitimately return acquired; retry
  /// instead of asserting so that even a build that compiles assertions out
  /// (or a future lock flavor with spurious abort exits) can never return
  /// from here without the lock held.
  void enter(std::uint32_t thread_id) {
    while (!lock_.enter(thread_id, nullptr).acquired) {
      // Unreachable with the current lock; harmless retry if it ever isn't.
    }
  }

  /// Release the lock. Wait-free (bounded exit).
  void exit(std::uint32_t thread_id) { lock_.exit(thread_id); }

 private:
  Model model_;
  core::LongLivedLock<Model, core::VersionedSpace, core::OneShotLock, Metrics>
      lock_;
};

/// The production default: metrics disabled, fast path uninstrumented.
using AbortableLock = BasicAbortableLock<>;

static_assert(obs::kZeroCostSink<AbortableLock::MetricsSink>,
              "the default AbortableLock must compile with a zero-cost "
              "observability sink — no loads or stores on the hot path");

/// The instrumented flavor (per-process counters, event ring, hand-off
/// histogram). See aml/obs/metrics.hpp for usage.
using ObservedAbortableLock = BasicAbortableLock<obs::Metrics>;

}  // namespace aml
