// aml::AbortableLock — the deployable, native-hardware instantiation of the
// paper's long-lived abortable lock (quickstart API).
//
//   aml::AbortableLock lock(aml::LockConfig{.max_threads = 8});
//   aml::AbortSignal signal;
//   if (lock.enter(tid, signal)) {   // blocks; false <=> aborted
//     ... critical section ...
//     lock.exit(tid);
//   }
//
// Each participating thread must use a distinct id in [0, max_threads).
// enter() returns false only if the signal was raised; it may return true
// even when the signal is up (the hand-off won the race — footnote 2 of the
// paper). AbortSignal is level-triggered: reset() it before reuse.
//
// On 64-bit hardware W = 64, so the RMR cost of a passage is
// O(log_64 A) — at most 3 cache-line transfers of tree traversal even at
// tens of thousands of threads, and O(1) when nobody aborts.
#pragma once

#include <atomic>
#include <cstdint>

#include "aml/model/native.hpp"
#include "aml/core/longlived.hpp"

namespace aml {

/// Level-triggered abort signal. May be raised by any thread (e.g. a timer,
/// a priority manager, a deadlock detector); observed by the waiter inside
/// enter().
class AbortSignal {
 public:
  void raise() { flag_.store(true, std::memory_order_release); }
  void reset() { flag_.store(false, std::memory_order_release); }
  bool raised() const { return flag_.load(std::memory_order_acquire); }

  /// The raw flag the lock's wait loops poll.
  const std::atomic<bool>* flag() const { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

struct LockConfig {
  std::uint32_t max_threads = 64;
  /// Tree arity. 64 (the full machine word) is the paper's W = Theta(N^eps)
  /// regime; smaller values are mainly useful for experiments.
  std::uint32_t tree_width = 64;
};

class AbortableLock {
 public:
  explicit AbortableLock(LockConfig config = {})
      : model_(config.max_threads),
        lock_(model_, {.nprocs = config.max_threads,
                       .w = config.tree_width,
                       .find = core::Find::kAdaptive}) {}

  AbortableLock(const AbortableLock&) = delete;
  AbortableLock& operator=(const AbortableLock&) = delete;

  /// Acquire the lock. Returns false iff the attempt was abandoned because
  /// `signal` was raised while waiting. Starvation-free when no signal is
  /// raised; bounded abort when one is.
  bool enter(std::uint32_t thread_id, const AbortSignal& signal) {
    return lock_.enter(thread_id, signal.flag());
  }

  /// Acquire without abort support (never returns false).
  void enter(std::uint32_t thread_id) {
    const bool ok = lock_.enter(thread_id, nullptr);
    AML_ASSERT(ok, "unsignalled enter cannot abort");
  }

  /// Release the lock. Wait-free (bounded exit).
  void exit(std::uint32_t thread_id) { lock_.exit(thread_id); }

 private:
  model::NativeModel model_;
  core::LongLivedLock<model::NativeModel> lock_;
};

}  // namespace aml
