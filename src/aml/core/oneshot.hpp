// The one-shot abortable lock of Section 3 (Figure 1), the main building
// block of the paper: an array-based queue lock (F&A on Tail, local spin on
// go[i]) augmented with the Tree of Section 4 to skip queue slots abandoned
// by aborting processes.
//
//   Enter  (Alg 3.1): i <- F&A(Tail, 1); spin on go[i], watching the abort
//                     signal; on hand-off write Head <- i and enter the CS.
//   Exit   (Alg 3.2): LastExited <- Head; SignalNext(Head).
//   Abort  (Alg 3.3): Tree.Remove(i); if Head == LastExited, the exiting
//                     process' FindNext may have crossed paths with our
//                     Remove, so assume responsibility for its hand-off and
//                     SignalNext(Head).
//   SignalNext (Alg 3.4): j <- Tree.FindNext(head); unless j is TOP/BOTTOM,
//                     go[j] <- true.
//
// Properties (Theorem 2): mutual exclusion, starvation freedom, bounded
// exit, bounded abort, FCFS; O(log_W A_i) RMRs per passage where A_i is the
// number of aborts during the passage (O(1) if none), O(log_W A_t) per
// aborted attempt.
//
// Each process may attempt to acquire a given instance at most once (the
// long-lived transformation of Section 6 lifts this restriction).
//
// OneShotLockDsm is the DSM variant (Section 3, "DSM variant"): since a
// process' dynamically-assigned go slot cannot be guaranteed local in DSM,
// the process publishes a process-local spin bit in announce[i] and spins on
// that; SignalNext writes go[i] = 1, reads announce[i], and sets the
// published spin bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/model/ordered.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/config.hpp"
#include "aml/pal/edges.hpp"
#include "aml/core/tree.hpp"

namespace aml::core {

/// Slot value reported for attempts that never received a queue slot (e.g.
/// an abort during the long-lived lock's spin-node wait, before joining an
/// instance).
inline constexpr std::uint32_t kNoSlot = obs::kNoSlot;

/// Which FindNext implementation SignalNext uses.
enum class Find : std::uint8_t {
  kPlain,     ///< Algorithm 4.1 — O(log_W N) ascent
  kAdaptive,  ///< Algorithm 4.3 — O(log_W A) ascent with sidestep
};

/// Result of OneShotLock::enter. `slot` is the queue index the doorway F&A
/// assigned (exposed for tests and for FCFS auditing).
struct EnterResult {
  bool acquired = false;
  std::uint32_t slot = 0;
};

namespace detail {
/// LastExited's initial value: the paper's -1 ("no process exited yet").
inline constexpr std::uint64_t kNoneExited = ~std::uint64_t{0};
}  // namespace detail

/// Test-only fault injection: reproduce the hand-off bugs the analysis layer
/// exists to catch. Every flag defaults to off (correct algorithm); a test
/// switches one on to seed a deliberately broken protocol whose failure only
/// manifests under specific interleavings (see tests/analysis).
struct FaultInjection {
  /// exit() skips SignalNext entirely (unconditional lost hand-off).
  bool skip_exit_signal = false;
  /// abort_slot() skips the crossed-paths responsibility hand-off (Algorithm
  /// 3.3 line 15): the exiter's FindNext that returned TOP assumed the
  /// aborter would signal; nobody does — an interleaving-dependent lost
  /// wakeup.
  bool skip_abort_responsibility = false;
};

/// `Metrics` selects the observability sink (see aml/obs/metrics.hpp). The
/// default NullMetrics compiles every instrumentation point to nothing.
template <typename Space, typename Metrics = obs::NullMetrics>
class OneShotLock {
 public:
  using Word = typename Space::Word;
  using MetricsSink = Metrics;

  OneShotLock(Space& space, std::uint32_t n_slots, std::uint32_t w,
              Find find = Find::kAdaptive)
      : space_(space),
        n_(n_slots),
        find_(find),
        tree_(space, n_slots, w) {
    tail_ = space_.alloc(1, 0);
    head_ = space_.alloc(1, 0);
    last_exited_ = space_.alloc(1, detail::kNoneExited);
    go_.reserve(n_slots);
    for (std::uint32_t i = 0; i < n_slots; ++i) {
      go_.push_back(space_.alloc(1, i == 0 ? 1 : 0));  // go = [1, 0, ..., 0]
    }
  }

  OneShotLock(const OneShotLock&) = delete;
  OneShotLock& operator=(const OneShotLock&) = delete;

  std::uint32_t capacity() const { return n_; }
  const Tree<Space>& tree() const { return tree_; }
  Tree<Space>& tree() { return tree_; }

  /// Bind an observability sink (no-op for the NullMetrics default).
  void set_metrics(Metrics* sink) { obs_.bind(sink); }

  /// Algorithm 3.1. Blocks until the lock is acquired or the abort signal is
  /// observed while waiting. The returned slot is valid in both cases.
  EnterResult enter(Pid self, const std::atomic<bool>* abort_signal) {
    const std::uint64_t i = space_.faa(self, *tail_, 1);  // doorway (line 1)
    AML_ASSERT(i < n_, "one-shot lock capacity exceeded (re-entry?)");
    const std::uint32_t slot = static_cast<std::uint32_t>(i);
    obs_.on_enter(self, slot);
    // Acquire side of the grant: leaving the spin makes everything the
    // signaller did before go[i] <- 1 visible (its CS, Head, LastExited).
    auto outcome = space_.wait(  // AML_X_EDGE(oneshot.grant)
        self, *go_[slot],
        [this, self](std::uint64_t v) {
          obs_.on_spin_iteration(self);
          return v != 0;
        },
        abort_signal);
    if (outcome.stopped) {  // lines 3-5
      abort_slot(self, slot);
      obs_.on_abort(self, slot);
      return {false, slot};
    }
    space_.write(self, *head_, i);  // line 6
    obs_.on_granted(self, slot);
    return {true, slot};
  }

  /// Algorithm 3.2. Must only be called by the current critical-section
  /// owner. Wait-free (bounded exit).
  void exit(Pid self) {
    const std::uint64_t head = space_.read(self, *head_);    // line 8
    obs_.on_exit(self, static_cast<std::uint32_t>(head));
    space_.write(self, *last_exited_, head);                 // line 9
    if (faults_.skip_exit_signal) return;                    // seeded bug
    signal_next(self, static_cast<std::uint32_t>(head));     // line 10
  }

  // --- introspection (tests / benches) ---------------------------------

  std::uint64_t peek_head(Pid self) { return space_.read(self, *head_); }
  std::uint64_t peek_tail(Pid self) { return space_.read(self, *tail_); }
  std::uint64_t peek_last_exited(Pid self) {
    return space_.read(self, *last_exited_);
  }
  std::uint64_t peek_go(Pid self, std::uint32_t i) {
    return space_.read(self, *go_[i]);
  }

  // --- oracle probes (no gating, no accounting; scheduler-thread safe) --

  std::uint64_t probe_head() const { return space_.peek(*head_); }
  std::uint64_t probe_tail() const { return space_.peek(*tail_); }
  std::uint64_t probe_last_exited() const {
    return space_.peek(*last_exited_);
  }
  std::uint64_t probe_go(std::uint32_t i) const {
    return space_.peek(*go_[i]);
  }

  // --- recovery surface (aml::ipc owner-death recovery) -----------------
  //
  // A crashed process cannot finish its own passage; a recoverer drives it
  // through the same algorithm steps on the victim's behalf. These are the
  // exact bodies of the corresponding algorithm fragments, exposed so the
  // recoverer can resume from the phase the victim's journal recorded (see
  // aml/ipc/shm_lock.hpp). `self` is the *recoverer's* pid — it is doing
  // the memory operations.

  /// Finish a grant the victim was signalled for but never acknowledged:
  /// Algorithm 3.1 line 6. Idempotent — re-writing Head with the same slot
  /// is harmless if the victim already wrote it.
  void complete_grant(Pid self, std::uint32_t slot) {
    space_.write(self, *head_, slot);
    obs_.on_granted(self, slot);
  }

  /// Run the victim's abort (Algorithm 3.3) for a slot that was journalled
  /// but never granted. Counted as an abort in the bound sink, which is how
  /// recovered-as-aborted passages surface in aml::obs.
  void abort_on_behalf(Pid self, std::uint32_t slot) {
    abort_slot(self, slot);
    obs_.on_abort(self, slot);
  }

  /// Re-drive the hand-off from a known head (Algorithm 3.4) when the victim
  /// died mid-exit after writing LastExited: FindNext is idempotent (exit
  /// does not remove the head from the tree, so a re-run finds the same
  /// successor) and a duplicate go[j] <- 1 is absorbed.
  void resignal_from(Pid self, std::uint32_t head) {
    signal_next(self, head);
  }

  /// Seed a protocol bug (tests only — see FaultInjection).
  void inject_faults(const FaultInjection& faults) { faults_ = faults; }

  /// Test-only pokes bypassing the algorithm (oracle fire-tests). Only
  /// instantiable over spaces with poke() (the raw models).
  void debug_poke_tail(std::uint64_t v) { space_.poke(*tail_, v); }
  void debug_poke_go(std::uint32_t i, std::uint64_t v) {
    space_.poke(*go_[i], v);
  }

 private:
  /// Algorithm 3.3.
  void abort_slot(Pid self, std::uint32_t i) {
    tree_.remove(self, i);                                       // line 11
    const std::uint64_t head = space_.read(self, *head_);        // line 12
    const std::uint64_t last = space_.read(self, *last_exited_);
    if (head != last) return;                                    // lines 13-14
    if (faults_.skip_abort_responsibility) return;  // seeded bug (tests)
    // Process `head` may be mid-exit and its FindNext may have crossed paths
    // with our Remove; assume responsibility for its hand-off.
    signal_next(self, static_cast<std::uint32_t>(head));         // line 15
  }

  /// Algorithm 3.4.
  void signal_next(Pid self, std::uint32_t head) {
    obs_.on_findnext(self);
    const FindResult r = (find_ == Find::kPlain)
                             ? tree_.find_next(self, head)
                             : tree_.adaptive_find_next(self, head);
    if (!r.is_found()) return;  // TOP: an aborter took responsibility;
                                // BOTTOM: no successor exists (lines 17-18)
    // Release suffices for the grant store: no other protocol word is read
    // after it, and the crossed-paths race (Remove vs FindNext) is decided
    // entirely by the seq_cst tree CASes and Head/LastExited accesses that
    // precede it. The successor's spin acquires it.
    model::ord::write_rel(space_, self, *go_[r.slot], 1);  // AML_V_EDGE(oneshot.grant), line 19
  }

  Space& space_;
  std::uint32_t n_;
  Find find_;
  Tree<Space> tree_;
  Word* tail_ = nullptr;
  Word* head_ = nullptr;
  Word* last_exited_ = nullptr;
  std::vector<Word*> go_;
  FaultInjection faults_;  ///< all-off by default (correct algorithm)
  [[no_unique_address]] obs::SinkHandle<Metrics> obs_;
};

/// DSM variant (Section 3). Requires the space to provide
/// alloc_owned(owner, n, init): the per-process spin bits are local to their
/// owner; everything else is placed like the CC variant.
template <typename Space, typename Metrics = obs::NullMetrics>
class OneShotLockDsm {
 public:
  using Word = typename Space::Word;
  using MetricsSink = Metrics;

  static constexpr std::uint64_t kNoAnnounce = ~std::uint64_t{0};

  /// Convenience overload for contexts where processes and slots coincide
  /// (notably the long-lived transformation).
  OneShotLockDsm(Space& space, std::uint32_t n_slots, std::uint32_t w,
                 Find find = Find::kAdaptive)
      : OneShotLockDsm(space, n_slots, w, n_slots, find) {}

  OneShotLockDsm(Space& space, std::uint32_t n_slots, std::uint32_t w,
                 Pid nprocs, Find find = Find::kAdaptive)
      : space_(space), n_(n_slots), find_(find), tree_(space, n_slots, w) {
    tail_ = space_.alloc(1, 0);
    head_ = space_.alloc(1, 0);
    last_exited_ = space_.alloc(1, detail::kNoneExited);
    go_.reserve(n_slots);
    announce_.reserve(n_slots);
    for (std::uint32_t i = 0; i < n_slots; ++i) {
      go_.push_back(space_.alloc(1, i == 0 ? 1 : 0));
      announce_.push_back(space_.alloc(1, kNoAnnounce));
    }
    spin_.reserve(nprocs);
    for (Pid p = 0; p < nprocs; ++p) {
      spin_.push_back(space_.alloc_owned(p, 1, 0));  // local spin bit
    }
  }

  OneShotLockDsm(const OneShotLockDsm&) = delete;
  OneShotLockDsm& operator=(const OneShotLockDsm&) = delete;

  std::uint32_t capacity() const { return n_; }

  /// Bind an observability sink (no-op for the NullMetrics default).
  void set_metrics(Metrics* sink) { obs_.bind(sink); }

  EnterResult enter(Pid self, const std::atomic<bool>* abort_signal) {
    const std::uint64_t i = space_.faa(self, *tail_, 1);
    AML_ASSERT(i < n_, "one-shot lock capacity exceeded (re-entry?)");
    const std::uint32_t slot = static_cast<std::uint32_t>(i);
    obs_.on_enter(self, slot);
    // Publish the local spin bit, then check go[i]; the signaller writes
    // go[i] before reading announce[i], so one side always sees the other.
    // This is a Dekker (store-buffering) pattern: both the announce write /
    // go read here and the go write / announce read in signal_next MUST
    // stay seq_cst — acquire/release alone permits the r1=0, r2=0 outcome
    // (both sides miss each other) and the grant is lost.
    space_.write(self, *announce_[slot], self);
    const std::uint64_t granted = space_.read(self, *go_[slot]);
    if (granted == 0) {
      // Acquire side of the published-spin-bit wake.
      auto outcome = space_.wait(  // AML_X_EDGE(oneshot.dsm_wake)
          self, *spin_[self],
          [this, self](std::uint64_t v) {
            obs_.on_spin_iteration(self);
            return v != 0;
          },
          abort_signal);
      if (outcome.stopped) {
        abort_slot(self, slot);
        obs_.on_abort(self, slot);
        return {false, slot};
      }
    }
    space_.write(self, *head_, i);
    obs_.on_granted(self, slot);
    return {true, slot};
  }

  void exit(Pid self) {
    const std::uint64_t head = space_.read(self, *head_);
    obs_.on_exit(self, static_cast<std::uint32_t>(head));
    space_.write(self, *last_exited_, head);
    signal_next(self, static_cast<std::uint32_t>(head));
  }

 private:
  void abort_slot(Pid self, std::uint32_t i) {
    tree_.remove(self, i);
    const std::uint64_t head = space_.read(self, *head_);
    const std::uint64_t last = space_.read(self, *last_exited_);
    if (head != last) return;
    signal_next(self, static_cast<std::uint32_t>(head));
  }

  void signal_next(Pid self, std::uint32_t head) {
    obs_.on_findnext(self);
    const FindResult r = (find_ == Find::kPlain)
                             ? tree_.find_next(self, head)
                             : tree_.adaptive_find_next(self, head);
    if (!r.is_found()) return;
    // Dekker pair with enter's announce-write/go-read: seq_cst required on
    // both the go write and the announce read (see enter).
    space_.write(self, *go_[r.slot], 1);
    const std::uint64_t s = space_.read(self, *announce_[r.slot]);
    if (s != kNoAnnounce) {
      // Final wake of the published spin bit: release suffices — the
      // grantee's spin acquires it, and nothing is read after this store.
      model::ord::write_rel(space_, self,  // AML_V_EDGE(oneshot.dsm_wake)
                            *spin_[static_cast<Pid>(s)], 1);
    }
  }

  Space& space_;
  std::uint32_t n_;
  Find find_;
  Tree<Space> tree_;
  Word* tail_ = nullptr;
  Word* head_ = nullptr;
  Word* last_exited_ = nullptr;
  std::vector<Word*> go_;
  std::vector<Word*> announce_;
  std::vector<Word*> spin_;  ///< spin_[p] is local to process p
  [[no_unique_address]] obs::SinkHandle<Metrics> obs_;
};

}  // namespace aml::core
