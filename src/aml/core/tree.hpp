// The Tree data structure of Section 4: a W-ary tree over the queue slots
// that tracks which slots have been abandoned by aborting processes.
//
//  * Remove(p)            — Algorithm 4.2: ascend from leaf p setting the bit
//                           of p's subtree with F&A; keep ascending while the
//                           visited node became all-ones (EMPTY).
//  * FindNext(p)          — Algorithm 4.1: ascend until a zero bit exists to
//                           the right of p's path, then descend to the
//                           leftmost non-abandoned leaf. Returns that slot,
//                           BOTTOM (no candidate anywhere to the right), or
//                           TOP (crossed paths with an in-flight Remove: a
//                           node on the descent read as EMPTY).
//  * AdaptiveFindNext(p)  — Algorithm 4.3: like FindNext but when the current
//                           node is the rightmost child of its parent,
//                           "sidestep" to the right cousin instead of
//                           ascending, making the RMR cost O(log_W A) where A
//                           is the number of removers (Claim 21) instead of
//                           O(log_W N).
//
// The semantics are *not* linearizable (Section 3): TOP explicitly exposes
// concurrency between FindNext and Remove, and the one-shot lock's
// responsibility hand-off protocol is built around it.
//
// The template parameter Space is any memory model / word space providing
// read and faa (see aml/model/concepts.hpp). `self` is the executing process
// (for RMR accounting); `p` is a queue slot.
#pragma once

#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/bits.hpp"
#include "aml/pal/config.hpp"
#include "aml/core/tree_geometry.hpp"

namespace aml::core {

using model::Pid;

/// Outcome of FindNext / AdaptiveFindNext.
struct FindResult {
  enum class Kind : std::uint8_t {
    kFound,   ///< `slot` is the first non-abandoned slot > p
    kTop,     ///< ⊤: crossed paths with a concurrent Remove
    kBottom,  ///< ⊥: every slot > p is abandoned; the lock is unusable
  };
  Kind kind = Kind::kBottom;
  std::uint32_t slot = 0;

  static FindResult found(std::uint32_t s) {
    return {Kind::kFound, s};
  }
  static FindResult top() { return {Kind::kTop, 0}; }
  static FindResult bottom() { return {Kind::kBottom, 0}; }

  bool is_found() const { return kind == Kind::kFound; }
  bool is_top() const { return kind == Kind::kTop; }
  bool is_bottom() const { return kind == Kind::kBottom; }
};

template <typename Space>
class Tree {
 public:
  using Word = typename Space::Word;

  /// Build the tree over `n_slots` slots with W = `w`. All storage is
  /// allocated from `space` up front (the structure is static).
  Tree(Space& space, std::uint32_t n_slots, std::uint32_t w)
      : space_(space), geo_(n_slots, w), empty_(pal::empty_word(w)) {
    levels_.resize(geo_.height() + 1);
    for (std::uint32_t lvl = 1; lvl <= geo_.height(); ++lvl) {
      const std::uint64_t width = geo_.stored_width(lvl);
      levels_[lvl].reserve(width);
      for (std::uint64_t idx = 0; idx < width; ++idx) {
        levels_[lvl].push_back(space_.alloc(1, geo_.initial_value(lvl, idx)));
      }
    }
  }

  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  const TreeGeometry& geometry() const { return geo_; }

  /// Algorithm 4.2. Marks slot p abandoned. Wait-free; O(log_W R) RMRs where
  /// R is the number of removers so far (Claim 20). Returns the number of
  /// levels ascended (introspection for tests/benches).
  std::uint32_t remove(Pid self, std::uint32_t p) {
    const std::uint32_t h = geo_.height();
    const std::uint32_t w = geo_.w();
    std::uint32_t levels = 0;
    for (std::uint32_t lvl = 1; lvl <= h; ++lvl) {
      const std::uint64_t j = pal::offset_mask(w, geo_.offset(p, lvl));
      Word* node = stored_node(lvl, geo_.node_index(p, lvl));
      AML_DASSERT(node != nullptr, "Remove must touch stored nodes only");
      const std::uint64_t snap = space_.faa(self, *node, j);
      AML_DASSERT((snap & j) == 0, "tree bit set twice (double remove?)");
      ++levels;
      if (snap + j != empty_) break;
    }
    return levels;
  }

  /// Algorithm 4.1 (non-adaptive). See FindResult for outcomes.
  FindResult find_next(Pid self, std::uint32_t p) {
    const std::uint32_t h = geo_.height();
    const std::uint32_t w = geo_.w();
    std::uint64_t snap = 0;
    std::uint64_t idx = 0;
    std::uint32_t lvl = 1;
    bool found = false;
    for (; lvl <= h; ++lvl) {
      idx = geo_.node_index(p, lvl);
      const int offset = static_cast<int>(geo_.offset(p, lvl));
      snap = read_stored(self, lvl, idx);
      if (pal::has_zero_to_the_right(snap, w, offset)) {
        found = true;
        break;
      }
    }
    if (!found) return FindResult::bottom();  // reached root: no candidate
    const int offset = static_cast<int>(geo_.offset(p, lvl));
    return descend(self, lvl, idx, snap, offset);
  }

  /// Algorithm 4.3 (adaptive ascent with sidestep). Equivalent to find_next
  /// per Lemma 1; O(log_W R_p) RMRs (Claim 21).
  FindResult adaptive_find_next(Pid self, std::uint32_t p) {
    const std::uint32_t h = geo_.height();
    const std::uint32_t w = geo_.w();
    std::uint64_t idx = geo_.node_index(p, 1);
    int offset = static_cast<int>(geo_.offset(p, 1));
    std::uint64_t snap = 0;
    std::uint32_t lvl = 1;
    bool found = false;
    for (std::uint32_t iter = 1; iter <= h; ++iter, ++lvl) {
      if (offset == static_cast<int>(w) - 1) {
        // Sidestep: this node is the rightmost child of its parent, so no
        // zero can appear to its right there; optimistically examine the
        // node to the right of the parent at the same level instead
        // (Algorithm 4.3, lines 45-47).
        idx = idx + 1;
        offset = -1;
      }
      snap = read_maybe_virtual(self, lvl, idx);
      if (pal::has_zero_to_the_right(snap, w, offset)) {
        found = true;
        break;
      }
      // Ascend. After a sidestep the parent search must include the cousin's
      // own subtree (offsetAtParent - 1): the Remove() that filled the
      // cousin might not have set the cousin's bit in the parent yet, and
      // the non-adaptive FindNext would have descended into the cousin and
      // returned TOP; mimic that (Algorithm 4.3, lines 51-54 and Section
      // 4.1's discussion).
      if (offset == -1) {
        offset = static_cast<int>(TreeGeometry::offset_at_parent(idx, w)) - 1;
      } else {
        offset = static_cast<int>(TreeGeometry::offset_at_parent(idx, w));
      }
      idx = idx / w;
    }
    if (!found) return FindResult::bottom();
    return descend(self, lvl, idx, snap, offset);
  }

  /// Test/bench introspection: raw value of node (lvl, idx), charged to
  /// `self`. Virtual (phantom) nodes read as EMPTY.
  std::uint64_t read_node(Pid self, std::uint32_t lvl, std::uint64_t idx) {
    return read_maybe_virtual(self, lvl, idx);
  }

  /// Oracle probe: raw value of node (lvl, idx) with no gating and no RMR
  /// accounting. Safe from the scheduler thread between grants (every worker
  /// is parked); virtual nodes read as EMPTY. Not part of the algorithm.
  std::uint64_t peek_node(std::uint32_t lvl, std::uint64_t idx) const {
    if (lvl < 1 || lvl >= levels_.size()) return empty_;
    const auto& level = levels_[lvl];
    if (idx >= level.size()) return empty_;
    return space_.peek(*level[idx]);
  }

  std::uint64_t empty_value() const { return empty_; }

  /// Test-only: overwrite node (lvl, idx) with an arbitrary value, bypassing
  /// the algorithm (oracle fire-tests manufacture illegal states with this).
  /// Only instantiable over spaces with poke() (the raw models).
  void debug_poke_node(std::uint32_t lvl, std::uint64_t idx,
                       std::uint64_t v) {
    Word* node = stored_node(lvl, idx);
    AML_ASSERT(node != nullptr, "debug_poke_node: virtual node");
    space_.poke(*node, v);
  }

 private:
  /// Shared descent of both algorithms (Algorithm 4.1 lines 26-36): from
  /// node (lvl, idx) whose snapshot `snap` has a zero to the right of
  /// `offset`, walk down to the leftmost non-abandoned leaf.
  FindResult descend(Pid self, std::uint32_t lvl, std::uint64_t idx,
                     std::uint64_t snap, int offset) {
    const std::uint32_t w = geo_.w();
    std::uint32_t index = pal::first_zero_to_the_right(snap, w, offset);
    std::uint64_t child = idx * w + index;
    for (std::uint32_t l = lvl - 1; l >= 1; --l) {
      const std::uint64_t s = read_stored(self, l, child);
      if (s == empty_) {
        // Crossed paths with a Remove() ascending this subtree: the zero bit
        // we followed has been filled underneath us.
        return FindResult::top();
      }
      index = pal::first_zero(s, w);
      child = child * w + index;
    }
    AML_DASSERT(child < geo_.n_slots(), "descended to a phantom leaf");
    return FindResult::found(static_cast<std::uint32_t>(child));
  }

  Word* stored_node(std::uint32_t lvl, std::uint64_t idx) {
    auto& level = levels_[lvl];
    return idx < level.size() ? level[idx] : nullptr;
  }

  /// Read a node that is always stored (ancestors of real leaves, or
  /// children reached by following zero bits).
  std::uint64_t read_stored(Pid self, std::uint32_t lvl, std::uint64_t idx) {
    Word* node = stored_node(lvl, idx);
    AML_DASSERT(node != nullptr, "expected a stored node");
    return space_.read(self, *node);
  }

  /// Read a node that may be virtual (beyond the stored width or beyond the
  /// conceptual tree edge): such nodes are entirely phantom and read as
  /// EMPTY with no memory operation. Only AdaptiveFindNext's sidestep can
  /// reach them.
  std::uint64_t read_maybe_virtual(Pid self, std::uint32_t lvl,
                                   std::uint64_t idx) {
    if (idx >= geo_.conceptual_width(lvl)) return empty_;
    Word* node = stored_node(lvl, idx);
    if (node == nullptr) return empty_;
    return space_.read(self, *node);
  }

  Space& space_;
  TreeGeometry geo_;
  std::uint64_t empty_;
  std::vector<std::vector<Word*>> levels_;  // [level][index] -> word
};

}  // namespace aml::core
