// Lazy-reset word space for recycling one-shot lock instances (Section 6.2,
// "Recycling one-shot locks").
//
// A one-shot lock instance must be reset to its initial values before reuse,
// but a single O(s(N))-RMR reset would break the transformation's RMR bound.
// Following the paper (which borrows from Aghazadeh, Golab & Woelfel's
// resettable-objects scheme without stealing bits from the payload words):
//
//   * each logical word w is backed by a version word V_w = (v_w, b_w) and
//     two incarnations w_0, w_1;
//   * the invariant is that w's *next* incarnation w_{1-b_w} always contains
//     w's initial value;
//   * the instance has a current version v, bumped by the recycler on each
//     reuse; a process reads v once per acquisition (begin_session, +O(1)
//     RMRs);
//   * on its first access to w in a session, a process reads V_w; if
//     v_w == v it uses w_{b_w}; otherwise it CASes V_w to (v, 1-b_w), resets
//     the stale w_{b_w} to the initial value (preparing the *next*
//     incarnation), and uses w_{1-b_w}. Losers of the CAS re-read V_w, which
//     then holds the current version. Subsequent accesses in the session use
//     the resolved incarnation directly (cached process-locally);
//   * to defeat version wraparound (v_w lives in W-1 bits of a W-bit word),
//     the recycler eagerly resets ceil(s / 2^(W-1)) words per reuse with a
//     rotating cursor, so every word is fully reset at least once per
//     wraparound period. This adds O(s(N)/2^W) = O(1) RMRs per reuse.
//
// The space exposes the same read/write/faa/wait vocabulary as a memory
// model, so Tree and OneShotLock instantiate over it unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "aml/model/ordered.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/bits.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"

namespace aml::core {

using model::Pid;

template <typename M>
class VersionedSpace {
 public:
  /// Handle to a logical word: an index into the space's tables. Stable.
  struct Word {
    std::uint32_t idx;
  };

  /// `w` is the word width: the version field of V_w has w-1 bits (the low
  /// bit is the incarnation bit), matching the paper's W-bit words.
  VersionedSpace(M& mem, Pid nprocs, std::uint32_t w)
      : mem_(mem),
        nprocs_(nprocs),
        version_mask_((w >= 64 ? ~std::uint64_t{0} : pal::empty_word(w)) >> 1),
        sessions_(nprocs),
        locals_(nprocs) {
    AML_ASSERT(w >= 2 && w <= 64, "W must be in [2, 64]");
    version_word_ = mem_.alloc(1, 0);
  }

  VersionedSpace(const VersionedSpace&) = delete;
  VersionedSpace& operator=(const VersionedSpace&) = delete;

  /// Allocate `n` logical words with initial value `init`. Only valid before
  /// the instance becomes shared (construction time). The returned handles
  /// are contiguous (each alloc gets its own handle block).
  Word* alloc(std::size_t n, std::uint64_t init) {
    const std::size_t base = records_.size();
    // Allocate the three backing words of each record as one contiguous
    // triple to keep the model's block count low.
    for (std::size_t i = 0; i < n; ++i) {
      Record rec;
      rec.vw = mem_.alloc(1, 0);  // version 0, incarnation 0
      rec.inc[0] = mem_.alloc(1, init);
      rec.inc[1] = mem_.alloc(1, init);
      rec.init = init;
      records_.push_back(rec);
    }
    handle_blocks_.emplace_back();
    std::vector<Word>& block = handle_blocks_.back();
    block.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      block.push_back(Word{static_cast<std::uint32_t>(base + i)});
    }
    return block.data();
  }

  /// DSM vocabulary passthrough (recycled instances are CC-only in the
  /// paper, but this keeps the space a drop-in word space).
  Word* alloc_owned(Pid /*owner*/, std::size_t n, std::uint64_t init) {
    return alloc(n, init);
  }

  // --- session management ----------------------------------------------

  /// Read the instance's current version. Every process must call this once
  /// after its F&A on LockDesc made the instance's use safe (Claim 24) and
  /// before any other access. Costs O(1) RMRs.
  void begin_session(Pid self) {
    sessions_[self]->current = mem_.read(self, *version_word_);
    sessions_[self]->epoch++;
  }

  /// Recycler-only: advance to the next incarnation. The caller must have
  /// exclusive, quiescent access to the instance (it holds the replaced
  /// instance, or is about to install this one while refcnt is 0). Performs
  /// the wraparound quota of eager resets.
  void next_incarnation(Pid self) {
    const std::uint64_t v =
        (mem_.read(self, *version_word_) + 1) & version_mask_;
    mem_.write(self, *version_word_, v);
    incarnations_++;
    // Eager reset quota: ceil(s / 2^(W-1)) words per reuse.
    const std::uint64_t period = version_mask_ + 1;
    std::uint64_t quota =
        (records_.size() + period - 1) / period;
    for (std::uint64_t k = 0; k < quota && !records_.empty(); ++k) {
      Record& rec = records_[cursor_ % records_.size()];
      cursor_++;
      mem_.write(self, *rec.inc[0], rec.init);
      mem_.write(self, *rec.inc[1], rec.init);
      mem_.write(self, *rec.vw, (v << 1) | 0);  // (v, b=0), both incs initial
    }
  }

  /// Total reuses so far (introspection).
  std::uint64_t incarnations() const { return incarnations_; }

  std::size_t logical_words() const { return records_.size(); }

  // --- oracle probes (no gating, no accounting; scheduler-thread safe) --

  /// Current instance version (the recycler-bumped word).
  std::uint64_t peek_version() const { return mem_.peek(*version_word_); }
  /// Raw V_w = (v_w << 1) | b_w of logical word `idx`.
  std::uint64_t peek_vw(std::size_t idx) const {
    return mem_.peek(*records_[idx].vw);
  }
  std::uint64_t version_mask() const { return version_mask_; }

  // --- model vocabulary --------------------------------------------------

  std::uint64_t read(Pid self, Word& w) {
    return mem_.read(self, resolve(self, w));
  }

  void write(Pid self, Word& w, std::uint64_t x) {
    mem_.write(self, resolve(self, w), x);
  }

  std::uint64_t faa(Pid self, Word& w, std::uint64_t delta) {
    return mem_.faa(self, resolve(self, w), delta);
  }

  template <typename Pred>
  model::WaitOutcome wait(Pid self, Word& w, Pred&& pred,
                          const std::atomic<bool>* stop) {
    // Spin loads inherit the model's acquire carrier (see native.hpp).
    return mem_.wait(self, resolve(self, w),  // AML_X_EDGE(model.native.carrier)
                     static_cast<Pred&&>(pred), stop);
  }

  // Ordered forwarders: resolution itself synchronizes via seq_cst CAS; the
  // resolved incarnation word then carries the caller's edge through the
  // model's ordered vocabulary (identity fallback on counting models).

  std::uint64_t read_acq(Pid self, Word& w) {
    return model::ord::read_acq(mem_, self, resolve(self, w));  // AML_X_EDGE(model.native.carrier)
  }

  std::uint64_t read_rlx(Pid self, Word& w) {
    return model::ord::read_rlx(mem_, self, resolve(self, w));  // AML_RELAXED(forwarder; justification at outer call site)
  }

  void write_rel(Pid self, Word& w, std::uint64_t x) {
    model::ord::write_rel(mem_, self, resolve(self, w), x);  // AML_V_EDGE(model.native.carrier)
  }

  void write_rlx(Pid self, Word& w, std::uint64_t x) {
    model::ord::write_rlx(mem_, self, resolve(self, w), x);  // AML_RELAXED(forwarder; justification at outer call site)
  }

 private:
  struct Record {
    typename M::Word* vw = nullptr;
    typename M::Word* inc[2] = {nullptr, nullptr};
    std::uint64_t init = 0;
  };

  struct Session {
    std::uint64_t current = 0;  ///< instance version read at session start
    std::uint64_t epoch = 0;    ///< bumped per begin_session
  };

  struct LocalEntry {
    std::uint64_t epoch = 0;  ///< session epoch this resolution belongs to
    std::uint8_t inc = 0;
  };

  /// Resolve the live incarnation of `w` for this process' session,
  /// performing the lazy reset protocol on first access.
  typename M::Word& resolve(Pid self, Word w) {
    Record& rec = records_[w.idx];
    auto& local = *locals_[self];
    if (local.size() < records_.size()) local.resize(records_.size());
    LocalEntry& entry = local[w.idx];
    const Session& session = *sessions_[self];
    if (entry.epoch == session.epoch) {
      return *rec.inc[entry.inc];  // already resolved this session
    }
    const std::uint64_t v = session.current;
    std::uint64_t raw = mem_.read(self, *rec.vw);
    std::uint64_t vw = raw >> 1;
    std::uint32_t b = static_cast<std::uint32_t>(raw & 1);
    if (vw != v) {
      // Stale: switch to the next incarnation (which holds the initial
      // value) and prepare the now-retired one for the switch after that.
      const std::uint64_t desired = (v << 1) | (1 - b);
      if (mem_.cas(self, *rec.vw, raw, desired)) {
        mem_.write(self, *rec.inc[b], rec.init);
        b = 1 - b;
      } else {
        // A same-session process won the switch; V_w now holds version v.
        raw = mem_.read(self, *rec.vw);
        AML_DASSERT((raw >> 1) == v, "V_w must hold the session version");
        b = static_cast<std::uint32_t>(raw & 1);
      }
    }
    entry.epoch = session.epoch;
    entry.inc = static_cast<std::uint8_t>(b);
    return *rec.inc[b];
  }

  M& mem_;
  Pid nprocs_;
  std::uint64_t version_mask_;  ///< versions live in W-1 bits
  typename M::Word* version_word_ = nullptr;
  std::deque<Record> records_;
  std::deque<std::vector<Word>> handle_blocks_;  // stable, contiguous
  std::uint64_t cursor_ = 0;        ///< recycler-only eager-reset cursor
  std::uint64_t incarnations_ = 0;  ///< recycler-only
  std::vector<pal::CachePadded<Session>> sessions_;
  std::vector<pal::CachePadded<std::vector<LocalEntry>>> locals_;
};

}  // namespace aml::core
