// Static geometry of the paper's W-ary tree (Section 4).
//
// The tree conceptually has W^H leaves, H = ceil(log_W N), numbered left to
// right from 0; leaf p is identified with queue slot p. Only internal nodes
// (levels 1..H) are stored; leaves are static sentinels. Because the
// structure is static, parents/children/offsets are computed arithmetically —
// no pointers are stored (paper, Section 4).
//
// When N < W^H the tree is "ragged": subtrees containing no real leaf are
// phantom. A node's initial value has the bits of its phantom children
// pre-set to 1 (as if those slots aborted before the execution), which makes
// FindNext/Remove behave exactly as on a full tree without allocating it.
// Storage per level l is ceil(N / W^l) nodes, plus one extension node where
// the conceptual tree is wider, so that AdaptiveFindNext's sidestep to a
// right cousin touches real memory (keeping RMR counts faithful).
#pragma once

#include <cstdint>

#include "aml/pal/bits.hpp"
#include "aml/pal/config.hpp"

namespace aml::core {

class TreeGeometry {
 public:
  /// n_slots >= 1 queue slots (= leaves = processes); 2 <= w <= 64.
  TreeGeometry(std::uint32_t n_slots, std::uint32_t w)
      : n_(n_slots), w_(w), height_(height_for(n_slots, w)) {
    AML_ASSERT(n_slots >= 1, "need at least one slot");
    AML_ASSERT(w >= 2 && w <= 64, "W must be in [2, 64]");
  }

  std::uint32_t n_slots() const { return n_; }
  std::uint32_t w() const { return w_; }
  /// H = ceil(log_W N), at least 1.
  std::uint32_t height() const { return height_; }

  /// W^lvl (number of leaves under one node at level lvl).
  std::uint64_t stride(std::uint32_t lvl) const {
    return pal::pow_sat(w_, lvl);
  }

  /// Conceptual number of nodes at level lvl in the full W^H tree.
  std::uint64_t conceptual_width(std::uint32_t lvl) const {
    return pal::pow_sat(w_, height_ - lvl);
  }

  /// Number of nodes actually backed by memory at level lvl (1 <= lvl <= H):
  /// all ancestors of real leaves, plus one extension node for the adaptive
  /// sidestep when the conceptual level is wider.
  std::uint64_t stored_width(std::uint32_t lvl) const {
    const std::uint64_t needed = ceil_div(n_, stride(lvl));
    const std::uint64_t conceptual = conceptual_width(lvl);
    return needed < conceptual ? needed + 1 : conceptual;
  }

  /// Index of Node(p, lvl) within its level.
  std::uint64_t node_index(std::uint32_t p, std::uint32_t lvl) const {
    return p / stride(lvl);
  }

  /// Offset(p, lvl): which child of Node(p, lvl) contains leaf p.
  std::uint32_t offset(std::uint32_t p, std::uint32_t lvl) const {
    return static_cast<std::uint32_t>((p / stride(lvl - 1)) % w_);
  }

  /// offsetAtParent for the node (lvl, idx): its child position at lvl+1.
  static std::uint32_t offset_at_parent(std::uint64_t idx, std::uint32_t w) {
    return static_cast<std::uint32_t>(idx % w);
  }

  /// Initial value of node (lvl, idx): phantom children (subtrees containing
  /// no leaf < N) have their bits pre-set.
  std::uint64_t initial_value(std::uint32_t lvl, std::uint64_t idx) const {
    const std::uint64_t child_span = stride(lvl - 1);
    std::uint64_t value = 0;
    for (std::uint32_t o = 0; o < w_; ++o) {
      const std::uint64_t first_leaf = (idx * w_ + o) * child_span;
      if (first_leaf >= n_) value |= pal::offset_mask(w_, o);
    }
    return value;
  }

  /// Total stored words across all levels: O(N / W) for W >= 2.
  std::uint64_t total_words() const {
    std::uint64_t total = 0;
    for (std::uint32_t lvl = 1; lvl <= height_; ++lvl) {
      total += stored_width(lvl);
    }
    return total;
  }

  static std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
  }

 private:
  static std::uint32_t height_for(std::uint32_t n, std::uint32_t w) {
    const std::uint32_t h = pal::ceil_log(n, w);
    return h == 0 ? 1 : h;
  }

  std::uint32_t n_;
  std::uint32_t w_;
  std::uint32_t height_;
};

}  // namespace aml::core
