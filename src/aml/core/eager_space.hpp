// Eager-reset word space: the ablation counterpart of VersionedSpace.
//
// Words are plain model words; next_incarnation() rewrites every word to its
// initial value, costing O(s(N)) RMRs per lock reuse. This is the naive
// recycling scheme the paper's lazy-reset design exists to avoid; the
// bench_ablation_reset harness quantifies the difference.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "aml/model/ordered.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/config.hpp"

namespace aml::core {

template <typename M>
class EagerSpace {
 public:
  using Word = typename M::Word;

  EagerSpace(M& mem, model::Pid /*nprocs*/, std::uint32_t /*w*/)
      : mem_(mem) {}

  EagerSpace(const EagerSpace&) = delete;
  EagerSpace& operator=(const EagerSpace&) = delete;

  Word* alloc(std::size_t n, std::uint64_t init) {
    Word* base = mem_.alloc(n, init);
    for (std::size_t i = 0; i < n; ++i) {
      records_.push_back(Record{base + i, init});
    }
    return base;
  }

  Word* alloc_owned(model::Pid owner, std::size_t n, std::uint64_t init) {
    Word* base = mem_.alloc_owned(owner, n, init);
    for (std::size_t i = 0; i < n; ++i) {
      records_.push_back(Record{base + i, init});
    }
    return base;
  }

  /// No per-session setup needed: words are direct.
  void begin_session(model::Pid /*self*/) {}

  /// Recycler-only: O(s) full reset.
  void next_incarnation(model::Pid self) {
    for (const Record& rec : records_) {
      mem_.write(self, *rec.word, rec.init);
    }
    incarnations_++;
  }

  std::uint64_t incarnations() const { return incarnations_; }
  std::size_t logical_words() const { return records_.size(); }

  std::uint64_t read(model::Pid p, Word& w) { return mem_.read(p, w); }
  void write(model::Pid p, Word& w, std::uint64_t x) { mem_.write(p, w, x); }
  std::uint64_t faa(model::Pid p, Word& w, std::uint64_t d) {
    return mem_.faa(p, w, d);
  }
  template <typename Pred>
  model::WaitOutcome wait(model::Pid p, Word& w, Pred&& pred,
                          const std::atomic<bool>* stop) {
    return mem_.wait(p, w, static_cast<Pred&&>(pred), stop);  // AML_X_EDGE(model.native.carrier)
  }

  // Ordered forwarders (identity fallback on counting models; see
  // model/ordered.hpp). The caller's annotation names the concrete edge.
  std::uint64_t read_acq(model::Pid p, Word& w) {
    return model::ord::read_acq(mem_, p, w);  // AML_X_EDGE(model.native.carrier)
  }
  std::uint64_t read_rlx(model::Pid p, Word& w) {
    return model::ord::read_rlx(mem_, p, w);  // AML_RELAXED(forwarder; justification at outer call site)
  }
  void write_rel(model::Pid p, Word& w, std::uint64_t x) {
    model::ord::write_rel(mem_, p, w, x);  // AML_V_EDGE(model.native.carrier)
  }
  void write_rlx(model::Pid p, Word& w, std::uint64_t x) {
    model::ord::write_rlx(mem_, p, w, x);  // AML_RELAXED(forwarder; justification at outer call site)
  }

 private:
  struct Record {
    Word* word;
    std::uint64_t init;
  };
  M& mem_;
  std::deque<Record> records_;
  std::uint64_t incarnations_ = 0;
};

}  // namespace aml::core
