// The long-lived abortable lock: the generic one-shot -> long-lived
// transformation of Section 6 (Figure 5) applied to the one-shot lock of
// Section 3, with the Section 6.2 memory-management schemes bounding space
// to O(N * s(N) + N^2) words.
//
// State is a single packed word
//
//      LockDesc = (Lock: instance index, Spn: spin-node index, Refcnt)
//
// manipulated with F&A (increment/decrement Refcnt while atomically
// snapshotting the tuple) and CAS (switch Lock/Spn when Refcnt drops to 0).
// The paper stores pointers; we store pool indices, which is what makes the
// tuple fit one real 64-bit word — functionally identical, since both
// instances and spin nodes come from pools fixed at construction.
//
//   Enter (Alg 6.1): if LockDesc.Spn equals the spin node saved by our
//     previous attempt, the one-shot instance we already used is still
//     installed; busy-wait on spn.go (O(1) RMRs) until it is switched out.
//     Then F&A LockDesc to join the current instance and run its Enter.
//   Exit (Alg 6.2): run the instance's Exit, then Cleanup.
//   Cleanup (Alg 6.3): F&A(-1); if we were last (refcnt was 1), prepare a
//     fresh instance (our held instance, advanced to its next incarnation)
//     and a fresh spin node, CAS-switch LockDesc, and on success set the
//     replaced spin node's go flag and hold the replaced instance for our
//     next allocation.
//
// The transformation preserves starvation freedom but not FCFS (Theorem 23);
// RMR cost per passage is within O(1) of the one-shot lock's (Claim 28).
//
// The Space template parameter selects the recycling scheme:
// VersionedSpace<M> (the paper's lazy reset; default) or EagerSpace<M> (the
// O(s(N))-per-reuse ablation).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "aml/model/ordered.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"
#include "aml/pal/edges.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/core/spin_pool.hpp"
#include "aml/core/versioned_space.hpp"

namespace aml::core {

/// Template parameters:
///   M           — memory model;
///   SpacePolicy — instance recycling scheme: VersionedSpace (the paper's
///                 lazy reset; default) or EagerSpace (the O(s) ablation);
///   OneShotT    — the one-shot lock to transform: OneShotLock (the paper's
///                 CC algorithm; default) or OneShotLockDsm. The paper's
///                 transformation is CC-only (its Spn busy-wait spins on a
///                 shared node); composing with the DSM variant is the
///                 Section 8 open problem, offered here for exploration —
///                 correct, but with remote spinning on the spin nodes;
///   Metrics     — observability sink (see aml/obs/metrics.hpp); the default
///                 NullMetrics compiles every instrumentation point away.
template <typename M, template <typename> class SpacePolicy = VersionedSpace,
          template <typename, typename> class OneShotT = OneShotLock,
          typename Metrics = obs::NullMetrics>
class LongLivedLock {
 public:
  using Space = SpacePolicy<M>;
  using MetricsSink = Metrics;

  struct Config {
    Pid nprocs = 2;       ///< N: number of participating processes
    std::uint32_t w = 64; ///< W: word width for the tree and version fields
    Find find = Find::kAdaptive;
  };

  LongLivedLock(M& mem, Config config)
      : mem_(mem),
        config_(config),
        spin_pool_(mem, config.nprocs, config.nprocs + 1),
        locals_(config.nprocs) {
    AML_ASSERT(config.nprocs >= 1 && config.nprocs <= kMaxProcs,
               "nprocs out of range for LockDesc packing");
    // N+1 one-shot instances: one installed, one held by each process.
    instances_.reserve(config.nprocs + 1);
    for (Pid i = 0; i <= config.nprocs; ++i) {
      instances_.push_back(std::make_unique<Instance>(mem_, config_));
    }
    for (Pid p = 0; p < config.nprocs; ++p) {
      locals_[p]->held = p + 1;
      locals_[p]->old_spn = kNoSpn;
    }
    const std::uint32_t spn0 = spin_pool_.alloc(0);
    lock_desc_ = mem_.alloc(1, pack(0, spn0, 0));
  }

  LongLivedLock(const LongLivedLock&) = delete;
  LongLivedLock& operator=(const LongLivedLock&) = delete;

  /// Bind an observability sink to this lock, its spin-node pool, and every
  /// one-shot instance (no-op for the NullMetrics default).
  void set_metrics(Metrics* sink) {
    obs_.bind(sink);
    spin_pool_.set_metrics(sink);
    for (auto& inst : instances_) inst->lock.set_metrics(sink);
  }

  /// Algorithm 6.1. `acquired` is true when the critical section was
  /// entered; false when the attempt was aborted (the abort signal was
  /// observed while waiting). `slot` is the queue index assigned by the
  /// joined instance's doorway, or kNoSlot when the attempt aborted during
  /// the spin-node wait, before joining an instance. Bounded abort: returns
  /// within a finite number of the caller's steps once the signal is up.
  EnterResult enter(Pid self, const std::atomic<bool>* abort_signal) {
    Local& local = *locals_[self];
    const Packed desc = unpack(mem_.read(self, *lock_desc_));  // line 57
    if (desc.spn == local.old_spn) {
      // The instance we already used is still installed: wait on its spin
      // node until it is switched out (lines 58-61). Safe against node
      // reuse: our pin on this node was published in Cleanup before our
      // Refcnt decrement, so its owner cannot reclaim it while we are here.
      auto& node = spin_pool_.node(desc.spn);
      // Acquire side of the switch: observing go == 1 imports the switcher's
      // CAS install of the fresh instance and everything before it.
      auto outcome = mem_.wait(  // AML_X_EDGE(longlived.spn_switch)
          self, *node.go,
          [this, self](std::uint64_t v) {
            obs_.on_spin_iteration(self);
            return v != 0;
          },
          abort_signal);
      if (outcome.stopped) {  // lines 60-61 (refcnt untouched)
        obs_.on_abort(self, kNoSlot);
        return {false, kNoSlot};
      }
    }
    const Packed joined = unpack(mem_.faa(self, *lock_desc_, 1));  // line 62
    AML_DASSERT(joined.refcnt < config_.nprocs, "Refcnt overflow");
    Instance& inst = *instances_[joined.lock];
    local.current = joined.lock;
    inst.space.begin_session(self);
    const EnterResult result = inst.lock.enter(self, abort_signal);  // line 63
    if (!result.acquired) {
      cleanup(self);  // lines 64-65
    }
    return result;
  }

  /// Algorithm 6.2. Caller must hold the lock.
  void exit(Pid self) {
    const Packed desc = unpack(mem_.read(self, *lock_desc_));  // line 67
    AML_DASSERT(desc.lock == locals_[self]->current,
                "installed instance changed under the CS holder (Claim 24)");
    instances_[desc.lock]->lock.exit(self);  // line 68
    cleanup(self);                           // line 69
  }

  // --- introspection -----------------------------------------------------

  /// Instance switches so far observed via a raw read (testing aid).
  std::uint64_t peek_refcnt(Pid self) {
    return unpack(mem_.read(self, *lock_desc_)).refcnt;
  }
  std::uint32_t instance_count() const {
    return static_cast<std::uint32_t>(instances_.size());
  }
  std::uint64_t total_incarnations() const {
    std::uint64_t total = 0;
    for (const auto& inst : instances_) total += inst->space.incarnations();
    return total;
  }
  /// Successful instance switches (Cleanup CAS installs). Unlike
  /// total_incarnations(), this excludes the next_incarnation() bumps made
  /// by Cleanups whose install CAS subsequently lost, so it counts the
  /// switches that actually happened (total_switches <= total_incarnations).
  std::uint64_t total_switches() const {
    return switches_.load(std::memory_order_relaxed);  // AML_RELAXED(monotonic introspection counter)
  }
  /// Currently installed instance index, via a raw read (testing aid).
  std::uint32_t peek_installed(Pid self) {
    return unpack(mem_.read(self, *lock_desc_)).lock;
  }
  std::size_t spin_nodes() const { return spin_pool_.total_nodes(); }

  // --- oracle probes (no gating, no accounting; scheduler-thread safe) --

  /// Unpacked LockDesc snapshot for invariant oracles.
  struct DescView {
    std::uint32_t lock = 0;
    std::uint32_t spn = 0;
    std::uint32_t refcnt = 0;
  };
  DescView probe_desc() const {
    const Packed d = unpack(mem_.peek(*lock_desc_));
    return {d.lock, d.spn, d.refcnt};
  }
  /// Version word of instance `idx`'s space. Only instantiable when the
  /// space policy exposes peek_version() (VersionedSpace).
  std::uint64_t probe_space_version(std::uint32_t idx) const {
    return instances_[idx]->space.peek_version();
  }
  /// Wraparound mask of the spaces' version fields (same for all instances).
  /// Only instantiable when the space policy exposes version_mask().
  std::uint64_t probe_space_version_mask() const {
    return instances_[0]->space.version_mask();
  }
  const Config& config() const { return config_; }

  /// Test-only: overwrite the packed LockDesc word, bypassing the algorithm
  /// (oracle fire-tests manufacture illegal states with this).
  void debug_poke_desc(std::uint32_t lock, std::uint32_t spn,
                       std::uint32_t refcnt) {
    mem_.poke(*lock_desc_, pack(lock, spn, refcnt));
  }

 private:
  static constexpr std::uint32_t kRefBits = 16;
  static constexpr std::uint32_t kSpnBits = 32;
  static constexpr std::uint32_t kLockBits = 16;
  static constexpr Pid kMaxProcs = (1u << kRefBits) - 2;
  static constexpr std::uint32_t kNoSpn = ~std::uint32_t{0};

  struct Packed {
    std::uint32_t lock;
    std::uint32_t spn;
    std::uint32_t refcnt;
  };

  static std::uint64_t pack(std::uint32_t lock, std::uint32_t spn,
                            std::uint32_t refcnt) {
    return (static_cast<std::uint64_t>(lock) << (kRefBits + kSpnBits)) |
           (static_cast<std::uint64_t>(spn) << kRefBits) | refcnt;
  }
  static Packed unpack(std::uint64_t raw) {
    Packed packed;
    packed.refcnt = static_cast<std::uint32_t>(raw & ((1u << kRefBits) - 1));
    packed.spn = static_cast<std::uint32_t>((raw >> kRefBits) &
                                            ((1ull << kSpnBits) - 1));
    packed.lock =
        static_cast<std::uint32_t>(raw >> (kRefBits + kSpnBits));
    return packed;
  }

  /// One recyclable one-shot lock instance: a word space plus the one-shot
  /// algorithm over it. All mutable state lives in the space's words, so the
  /// same objects serve every incarnation.
  struct Instance {
    Space space;
    OneShotT<Space, Metrics> lock;

    Instance(M& mem, const Config& config)
        : space(mem, config.nprocs, config.w),
          lock(space, config.nprocs, config.w, config.find) {}
  };

  struct Local {
    std::uint32_t held = 0;      ///< instance to use for the next allocation
    std::uint32_t old_spn = 0;   ///< spin node saved at our last Cleanup
    std::uint32_t current = 0;   ///< instance joined by the ongoing attempt
  };

  /// Algorithm 6.3, with one addition for spin-node reclamation: the spin
  /// node we are about to save as oldSpn is published in the announce array
  /// *before* the Refcnt decrement. Claim 24 makes the pre-read of
  /// LockDesc.Spn stable (our increment is still in force), and publishing
  /// before decrementing guarantees the pin is visible before the node can
  /// be retired, hence before its owner can scan for reuse.
  void cleanup(Pid self) {
    Local& local = *locals_[self];
    const Packed pinned = unpack(mem_.read(self, *lock_desc_));
    spin_pool_.publish_pin(self, pinned.spn);
    const Packed prev =
        unpack(mem_.faa(self, *lock_desc_, ~std::uint64_t{0}));  // line 70
    AML_DASSERT(prev.spn == pinned.spn,
                "LockDesc.Spn changed while our Refcnt hold was in force");
    local.old_spn = prev.spn;
    if (prev.refcnt != 1) return;  // line 71
    // We were the last user: switch to a fresh instance (lines 72-77).
    const std::uint32_t new_lock = local.held;
    instances_[new_lock]->space.next_incarnation(self);
    const std::uint32_t new_spn = spin_pool_.alloc(self);
    const std::uint64_t expected = pack(prev.lock, prev.spn, 0);
    const std::uint64_t desired = pack(new_lock, new_spn, 0);
    if (mem_.cas(self, *lock_desc_, expected, desired)) {
      switches_.fetch_add(1, std::memory_order_relaxed);  // AML_RELAXED(monotonic introspection counter)
      obs_.on_switch(self);
      // Retire the replaced spin node. Release suffices: the waiters in
      // enter (and the owner's reclaim scan) acquire go == 1, importing the
      // seq_cst install CAS above; no protocol word is read after this.
      model::ord::write_rel(mem_, self,  // AML_V_EDGE(longlived.spn_switch), line 77
                            *spin_pool_.node(prev.spn).go, 1);
      local.held = prev.lock;
    } else {
      // Another process joined (and will run Cleanup itself) or switched
      // first; our node was never visible.
      spin_pool_.unalloc(self, new_spn);
    }
  }

  M& mem_;
  Config config_;
  SpinNodePool<M, Metrics> spin_pool_;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::vector<pal::CachePadded<Local>> locals_;
  typename M::Word* lock_desc_ = nullptr;
  std::atomic<std::uint64_t> switches_{0};
  [[no_unique_address]] obs::SinkHandle<Metrics> obs_;
};

}  // namespace aml::core
