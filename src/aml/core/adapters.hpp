// Ergonomic adapters around aml::AbortableLock:
//
//   * LockGuard / TryGuard     — RAII critical sections;
//   * TimerWheel               — one background thread that raises
//                                AbortSignals at deadlines (the watchdog
//                                pattern every timed-try-lock needs);
//   * TimedAbortableLock       — try_enter_for / try_enter_until built from
//                                the lock's bounded-abort guarantee;
//   * ThreadRegistry           — maps std::thread ids to the dense small
//                                integers the algorithms identify processes
//                                by;
//   * StdAbortableMutex        — satisfies the standard Lockable concept
//                                (lock / try_lock / unlock), so it drops
//                                into std::lock_guard, std::unique_lock,
//                                std::scoped_lock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "aml/core/abortable_lock.hpp"
#include "aml/pal/config.hpp"

namespace aml {

/// RAII guard: enters in the constructor, exits in the destructor.
class LockGuard {
 public:
  LockGuard(AbortableLock& lock, std::uint32_t tid) : lock_(lock), tid_(tid) {
    lock_.enter(tid_);
  }
  ~LockGuard() { lock_.exit(tid_); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  AbortableLock& lock_;
  std::uint32_t tid_;
};

/// RAII guard for abortable acquisition: check owns() after construction.
class TryGuard {
 public:
  TryGuard(AbortableLock& lock, std::uint32_t tid, const AbortSignal& signal)
      : lock_(lock), tid_(tid), owns_(lock.enter(tid, signal)) {}
  ~TryGuard() {
    if (owns_) lock_.exit(tid_);
  }
  TryGuard(const TryGuard&) = delete;
  TryGuard& operator=(const TryGuard&) = delete;

  bool owns() const { return owns_; }
  explicit operator bool() const { return owns_; }

 private:
  AbortableLock& lock_;
  std::uint32_t tid_;
  bool owns_;
};

/// A single background thread that raises abort signals when their deadline
/// passes. Pending entries are indexed *by deadline* (a multimap ordered on
/// `when`) with a token -> entry side index for cancel, so arm(), cancel()
/// and each wheel wakeup are O(log #pending) — a previous revision scanned
/// the whole token map on every wakeup, turning a deadline storm into
/// O(#pending) work per fire. arm() wakes the wheel thread only when the new
/// deadline becomes the earliest; armings behind the current front leave the
/// wheel asleep until its already-correct wakeup time. Deadlines already due
/// are raised immediately by the wheel thread.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using Token = std::uint64_t;

  TimerWheel() : thread_([this] { run(); }) {}

  ~TimerWheel() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Raise `signal` at (or as soon as possible after) `when`.
  Token arm(AbortSignal& signal, Clock::time_point when) {
    bool new_earliest;
    Token token;
    {
      std::lock_guard<std::mutex> lk(mu_);
      token = next_token_++;
      const auto it = by_deadline_.emplace(when, Entry{&signal, token});
      by_token_.emplace(token, it);
      new_earliest = (it == by_deadline_.begin());
    }
    // Only a new front deadline changes the wheel's wakeup time; notifying
    // unconditionally woke (and re-sorted) the wheel on every arm.
    if (new_earliest) cv_.notify_one();
    return token;
  }

  /// Best-effort cancel: if the deadline already fired, the signal stays
  /// raised (callers reset() their signals between uses anyway).
  void cancel(Token token) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = by_token_.find(token);
    if (it == by_token_.end()) return;  // fired or cancelled already
    by_deadline_.erase(it->second);
    by_token_.erase(it);
    // No notify: removing the front at worst gives the wheel one spurious
    // wakeup at the stale time, after which it re-arms on the new front.
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return by_token_.size();
  }

 private:
  struct Entry {
    AbortSignal* signal;
    Token token;
  };
  using DeadlineMap = std::multimap<Clock::time_point, Entry>;

  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
      if (by_deadline_.empty()) {
        cv_.wait(lk, [&] { return stop_ || !by_deadline_.empty(); });
        continue;
      }
      const auto front = by_deadline_.begin();
      const auto when = front->first;
      if (Clock::now() >= when) {
        front->second.signal->raise();
        by_token_.erase(front->second.token);
        by_deadline_.erase(front);
        continue;
      }
      cv_.wait_until(lk, when);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  DeadlineMap by_deadline_;                      ///< fire order
  std::map<Token, DeadlineMap::iterator> by_token_;  ///< cancel index
  Token next_token_ = 1;
  bool stop_ = false;
  // Declared LAST: members initialize in declaration order, and the wheel
  // thread must only start once every field above is constructed.
  std::thread thread_;
};

/// AbortableLock plus deadline-based acquisition. Each thread id owns a
/// dedicated signal slot, so concurrent timed attempts do not interfere.
class TimedAbortableLock {
 public:
  explicit TimedAbortableLock(LockConfig config = {})
      : lock_(config), signals_(config.max_threads) {}

  bool try_enter_for(std::uint32_t tid, std::chrono::nanoseconds budget) {
    return try_enter_until(tid, TimerWheel::Clock::now() + budget);
  }

  bool try_enter_until(std::uint32_t tid, TimerWheel::Clock::time_point when) {
    AbortSignal& signal = signals_[tid];
    signal.reset();
    const TimerWheel::Token token = wheel_.arm(signal, when);
    const bool ok = lock_.enter(tid, signal);
    wheel_.cancel(token);
    return ok;
  }

  void enter(std::uint32_t tid) { lock_.enter(tid); }
  void exit(std::uint32_t tid) { lock_.exit(tid); }

 private:
  AbortableLock lock_;
  std::deque<AbortSignal> signals_;
  TimerWheel wheel_;
};

/// Assigns each OS thread a stable dense id on first use. Ids are never
/// recycled; constructions beyond `capacity` abort (matching the fixed-N
/// model of the paper).
class ThreadRegistry {
 public:
  explicit ThreadRegistry(std::uint32_t capacity) : capacity_(capacity) {}

  std::uint32_t id() {
    thread_local std::map<const ThreadRegistry*, std::uint32_t> cache;
    auto it = cache.find(this);
    if (it != cache.end()) return it->second;
    const std::uint32_t assigned =
        counter_.fetch_add(1, std::memory_order_relaxed);  // AML_RELAXED(monotonic id allocation counter)
    AML_ASSERT(assigned < capacity_, "ThreadRegistry capacity exceeded");
    cache.emplace(this, assigned);
    return assigned;
  }

  std::uint32_t capacity() const { return capacity_; }

 private:
  std::uint32_t capacity_;
  std::atomic<std::uint32_t> counter_{0};
};

/// Standard-Lockable facade: usable with std::lock_guard / std::unique_lock
/// / std::scoped_lock. try_lock() runs an acquisition attempt with a
/// pre-raised signal: by bounded abort it returns in a bounded number of
/// steps, acquiring only if the lock is handed over essentially immediately.
class StdAbortableMutex {
 public:
  explicit StdAbortableMutex(std::uint32_t max_threads = 64)
      : registry_(max_threads),
        lock_(LockConfig{.max_threads = max_threads}) {}

  void lock() { lock_.enter(registry_.id()); }
  void unlock() { lock_.exit(registry_.id()); }

  bool try_lock() {
    AbortSignal signal;
    signal.raise();
    return lock_.enter(registry_.id(), signal);
  }

  ThreadRegistry& registry() { return registry_; }

 private:
  ThreadRegistry registry_;
  AbortableLock lock_;
};

}  // namespace aml
