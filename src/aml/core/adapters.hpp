// Ergonomic adapters around aml::AbortableLock:
//
//   * LockGuard / TryGuard     — RAII critical sections;
//   * TimerWheel               — one background thread that raises
//                                AbortSignals at deadlines (the watchdog
//                                pattern every timed-try-lock needs);
//   * TimedAbortableLock       — try_enter_for / try_enter_until built from
//                                the lock's bounded-abort guarantee;
//   * ThreadRegistry           — maps std::thread ids to the dense small
//                                integers the algorithms identify processes
//                                by;
//   * StdAbortableMutex        — satisfies the standard Lockable concept
//                                (lock / try_lock / unlock), so it drops
//                                into std::lock_guard, std::unique_lock,
//                                std::scoped_lock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "aml/core/abortable_lock.hpp"
#include "aml/pal/config.hpp"

namespace aml {

/// RAII guard: enters in the constructor, exits in the destructor.
class LockGuard {
 public:
  LockGuard(AbortableLock& lock, std::uint32_t tid) : lock_(lock), tid_(tid) {
    lock_.enter(tid_);
  }
  ~LockGuard() { lock_.exit(tid_); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  AbortableLock& lock_;
  std::uint32_t tid_;
};

/// RAII guard for abortable acquisition: check owns() after construction.
class TryGuard {
 public:
  TryGuard(AbortableLock& lock, std::uint32_t tid, const AbortSignal& signal)
      : lock_(lock), tid_(tid), owns_(lock.enter(tid, signal)) {}
  ~TryGuard() {
    if (owns_) lock_.exit(tid_);
  }
  TryGuard(const TryGuard&) = delete;
  TryGuard& operator=(const TryGuard&) = delete;

  bool owns() const { return owns_; }
  explicit operator bool() const { return owns_; }

 private:
  AbortableLock& lock_;
  std::uint32_t tid_;
  bool owns_;
};

/// A single background thread that raises abort signals when their deadline
/// passes. arm() is O(log #pending); deadlines already due are raised
/// immediately by the wheel thread.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using Token = std::uint64_t;

  TimerWheel() : thread_([this] { run(); }) {}

  ~TimerWheel() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Raise `signal` at (or as soon as possible after) `when`.
  Token arm(AbortSignal& signal, Clock::time_point when) {
    std::lock_guard<std::mutex> lk(mu_);
    const Token token = next_token_++;
    pending_.emplace(token, Entry{&signal, when});
    cv_.notify_one();
    return token;
  }

  /// Best-effort cancel: if the deadline already fired, the signal stays
  /// raised (callers reset() their signals between uses anyway).
  void cancel(Token token) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.erase(token);
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pending_.size();
  }

 private:
  struct Entry {
    AbortSignal* signal;
    Clock::time_point when;
  };

  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
      if (pending_.empty()) {
        cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
        continue;
      }
      // Find the earliest deadline.
      auto earliest = pending_.begin();
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->second.when < earliest->second.when) earliest = it;
      }
      const auto when = earliest->second.when;
      if (Clock::now() >= when) {
        earliest->second.signal->raise();
        pending_.erase(earliest);
        continue;
      }
      cv_.wait_until(lk, when);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Token, Entry> pending_;
  Token next_token_ = 1;
  bool stop_ = false;
  // Declared LAST: members initialize in declaration order, and the wheel
  // thread must only start once every field above is constructed.
  std::thread thread_;
};

/// AbortableLock plus deadline-based acquisition. Each thread id owns a
/// dedicated signal slot, so concurrent timed attempts do not interfere.
class TimedAbortableLock {
 public:
  explicit TimedAbortableLock(LockConfig config = {})
      : lock_(config), signals_(config.max_threads) {}

  bool try_enter_for(std::uint32_t tid, std::chrono::nanoseconds budget) {
    return try_enter_until(tid, TimerWheel::Clock::now() + budget);
  }

  bool try_enter_until(std::uint32_t tid, TimerWheel::Clock::time_point when) {
    AbortSignal& signal = signals_[tid];
    signal.reset();
    const TimerWheel::Token token = wheel_.arm(signal, when);
    const bool ok = lock_.enter(tid, signal);
    wheel_.cancel(token);
    return ok;
  }

  void enter(std::uint32_t tid) { lock_.enter(tid); }
  void exit(std::uint32_t tid) { lock_.exit(tid); }

 private:
  AbortableLock lock_;
  std::deque<AbortSignal> signals_;
  TimerWheel wheel_;
};

/// Assigns each OS thread a stable dense id on first use. Ids are never
/// recycled; constructions beyond `capacity` abort (matching the fixed-N
/// model of the paper).
class ThreadRegistry {
 public:
  explicit ThreadRegistry(std::uint32_t capacity) : capacity_(capacity) {}

  std::uint32_t id() {
    thread_local std::map<const ThreadRegistry*, std::uint32_t> cache;
    auto it = cache.find(this);
    if (it != cache.end()) return it->second;
    const std::uint32_t assigned =
        counter_.fetch_add(1, std::memory_order_relaxed);
    AML_ASSERT(assigned < capacity_, "ThreadRegistry capacity exceeded");
    cache.emplace(this, assigned);
    return assigned;
  }

  std::uint32_t capacity() const { return capacity_; }

 private:
  std::uint32_t capacity_;
  std::atomic<std::uint32_t> counter_{0};
};

/// Standard-Lockable facade: usable with std::lock_guard / std::unique_lock
/// / std::scoped_lock. try_lock() runs an acquisition attempt with a
/// pre-raised signal: by bounded abort it returns in a bounded number of
/// steps, acquiring only if the lock is handed over essentially immediately.
class StdAbortableMutex {
 public:
  explicit StdAbortableMutex(std::uint32_t max_threads = 64)
      : registry_(max_threads),
        lock_(LockConfig{.max_threads = max_threads}) {}

  void lock() { lock_.enter(registry_.id()); }
  void unlock() { lock_.exit(registry_.id()); }

  bool try_lock() {
    AbortSignal signal;
    signal.raise();
    return lock_.enter(registry_.id(), signal);
  }

  ThreadRegistry& registry() { return registry_; }

 private:
  ThreadRegistry registry_;
  AbortableLock lock_;
};

}  // namespace aml
