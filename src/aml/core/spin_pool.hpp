// Spin-node pools for the long-lived transformation (Section 6.2,
// "Recycling spin nodes").
//
// A spin node may be busy-waited on by a process even after LockDesc no
// longer points to it, so reuse requires knowing no process can still spin
// on the node. The paper cites Aghazadeh, Golab & Woelfel's constant-RMR
// reclamation scheme; we implement the same pool discipline with an
// announce-array quiescence test (see DESIGN.md's substitution table):
//
//   * a process spins on a node only when the node equals its saved oldSpn
//     (Algorithm 6.1, lines 57-59). Before saving a node as oldSpn — i.e.
//     before the Refcnt decrement of Cleanup — the process *publishes* the
//     node index in announce[p]. Claim 24 guarantees LockDesc.Spn cannot
//     change between the read that obtains the node and the decrement, so
//     the publication strictly precedes the switch that retires the node,
//     and therefore precedes any owner reclamation scan;
//   * an owner reuses one of its nodes only if it was retired (its go flag
//     was set by the switch that replaced it) and no announce entry pins it.
//
// Pool sizing (paper): N+1 nodes per process always leaves a reusable node.
// At the moment an owner allocates for a switch, its own announce pins
// exactly the node being replaced, so at most N distinct nodes of the owner
// are pinned or installed; asserted at runtime.
//
// Reclamation is batched: one O(N)-read scan of the announce array reclaims
// every quiescent node into a local free list, so allocation is O(1)
// amortized (the cited scheme achieves O(1) worst-case; the difference only
// affects the switching process, not the lock's passage RMR bound shape).
#pragma once

#include <cstdint>
#include <vector>

#include "aml/model/ordered.hpp"
#include "aml/model/types.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"
#include "aml/pal/edges.hpp"

namespace aml::core {

template <typename M, typename Metrics = obs::NullMetrics>
class SpinNodePool {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  static constexpr std::uint64_t kNoPin = ~std::uint64_t{0};

  struct Node {
    Word* go = nullptr;
  };

  /// Pools of `per_pool` nodes for each of `nprocs` owners. The long-lived
  /// lock uses per_pool = N+1.
  SpinNodePool(M& mem, Pid nprocs, std::uint32_t per_pool)
      : mem_(mem), nprocs_(nprocs), per_pool_(per_pool) {
    const std::size_t total =
        static_cast<std::size_t>(nprocs) * per_pool;
    nodes_.reserve(total);
    states_.assign(total, State::kFree);
    for (std::size_t i = 0; i < total; ++i) {
      nodes_.push_back(Node{mem_.alloc(1, 0)});
    }
    announce_.reserve(nprocs);
    for (Pid p = 0; p < nprocs; ++p) {
      announce_.push_back(mem_.alloc(1, kNoPin));
    }
    free_lists_.resize(nprocs);
    for (Pid p = 0; p < nprocs; ++p) {
      auto& fl = *free_lists_[p];
      fl.reserve(per_pool);
      for (std::uint32_t k = 0; k < per_pool; ++k) {
        fl.push_back(p * per_pool + k);
      }
    }
  }

  SpinNodePool(const SpinNodePool&) = delete;
  SpinNodePool& operator=(const SpinNodePool&) = delete;

  Node& node(std::uint32_t global_idx) { return nodes_[global_idx]; }

  /// Bind an observability sink (no-op for the NullMetrics default).
  void set_metrics(Metrics* sink) { obs_.bind(sink); }

  /// Publish that `self` holds `global_idx` as its oldSpn. MUST be invoked
  /// before the Refcnt decrement that makes the node's retirement possible.
  /// Release suffices: the pin reaches the reclaim scan through the seq_cst
  /// F&A chain on LockDesc (pin -> our decrement -> owner's last-decrement),
  /// so the scan's read happens-after this store.
  void publish_pin(Pid self, std::uint32_t global_idx) {
    model::ord::write_rel(mem_, self, *announce_[self],  // AML_V_EDGE(spinpool.pin_publish)
                          global_idx);
  }

  /// Withdraw `self`'s pin (tests / teardown; the lock itself simply
  /// overwrites the pin on its next Cleanup).
  void clear_pin(Pid self) { mem_.write(self, *announce_[self], kNoPin); }

  /// Owner-only: obtain a reusable node (go reset to 0) from self's pool.
  std::uint32_t alloc(Pid self) {
    auto& fl = *free_lists_[self];
    if (fl.empty()) reclaim(self);
    AML_ASSERT(!fl.empty(), "spin-node pool exhausted: invariant violated");
    const std::uint32_t idx = fl.back();
    fl.pop_back();
    AML_DASSERT(states_[idx] == State::kFree, "allocating a busy node");
    states_[idx] = State::kIssued;
    return idx;  // go is 0 for free nodes
  }

  /// Owner-only: return a node that never became visible (install CAS lost).
  void unalloc(Pid self, std::uint32_t global_idx) {
    AML_ASSERT(global_idx / per_pool_ == self, "unalloc by non-owner");
    AML_DASSERT(states_[global_idx] == State::kIssued, "unalloc of free node");
    states_[global_idx] = State::kFree;
    free_lists_[self]->push_back(global_idx);
  }

  std::uint32_t per_pool() const { return per_pool_; }
  std::size_t total_nodes() const { return nodes_.size(); }

 private:
  enum class State : std::uint8_t {
    kFree,    ///< in the owner's free list; go == 0
    kIssued,  ///< handed out; possibly installed, retired, or pinned
  };

  /// Batch reclamation: one scan of the announce array, then sweep the
  /// owner's issued nodes, reclaiming each that is retired (go == 1) and
  /// unpinned.
  void reclaim(Pid self) {
    const std::uint32_t base = self * per_pool_;
    std::vector<bool> pinned(per_pool_, false);
    for (Pid p = 0; p < nprocs_; ++p) {
      // Acquire side of the pin publication (see publish_pin).
      const std::uint64_t pin =
          model::ord::read_acq(mem_, self, *announce_[p]);  // AML_X_EDGE(spinpool.pin_publish)
      if (pin != kNoPin && pin / per_pool_ == self) {
        pinned[pin % per_pool_] = true;
      }
    }
    auto& fl = *free_lists_[self];
    std::uint64_t reclaimed = 0;
    for (std::uint32_t k = 0; k < per_pool_; ++k) {
      const std::uint32_t idx = base + k;
      if (states_[idx] != State::kIssued || pinned[k]) continue;
      // Acquire side of the retirement flag: go == 1 was written by the
      // switch that replaced this node (Cleanup line 77).
      if (model::ord::read_acq(mem_, self, *nodes_[idx].go) !=  // AML_X_EDGE(longlived.spn_switch)
          1) {
        continue;  // still installed
      }
      // Reset is private until the node is re-installed: the next spinner
      // only finds the node through a LockDesc read that happens-after the
      // owner's seq_cst install CAS, which is sequenced after this store.
      model::ord::write_rlx(mem_, self, *nodes_[idx].go, 0);  // AML_RELAXED(published by the next install CAS)
      states_[idx] = State::kFree;
      fl.push_back(idx);
      ++reclaimed;
    }
    if (reclaimed != 0) obs_.on_spin_node_recycle(self, reclaimed);
  }

  M& mem_;
  Pid nprocs_;
  std::uint32_t per_pool_;
  std::vector<Node> nodes_;
  std::vector<State> states_;  ///< owner-local; distinct bytes per owner
  std::vector<Word*> announce_;
  std::vector<pal::CachePadded<std::vector<std::uint32_t>>> free_lists_;
  [[no_unique_address]] obs::SinkHandle<Metrics> obs_;
};

}  // namespace aml::core
