// CountingCcModel: a simulated cache-coherent shared memory that implements
// the paper's RMR accounting (Section 2) *by definition* rather than by
// hardware approximation:
//
//   - every write, CAS (successful or not), F&A, or SWAP incurs one RMR and
//     invalidates every other process' cached copy of the word;
//   - a read incurs one RMR iff it is the process' first access to the word
//     or the word was mutated since the process' last access; otherwise it is
//     a free local read;
//   - a process' own mutation leaves its own cached copy valid (the line is
//     in the modified state in its cache).
//
// Implementation: each word carries a version counter bumped on every
// mutation; each process keeps a private map word-id -> last version seen.
// A tiny per-word spinlock makes (value, version) updates atomic; the model
// is linearizable, so algorithms observe exactly the atomic-register
// semantics the paper assumes.
//
// A ScheduleHook may be installed to gate every operation, which the
// deterministic scheduler (aml/sched) uses to serialize and replay
// executions.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aml/pal/backoff.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"
#include "aml/model/types.hpp"

namespace aml::model {

class CountingCcModel {
 public:
  struct Word {
    std::atomic<std::uint32_t> lock{0};     ///< word spinlock
    std::atomic<std::uint64_t> version{0};  ///< bumped on every mutation
    std::uint64_t value = 0;                ///< guarded by `lock`
    std::uint32_t id = 0;                   ///< dense id for cache indexing
  };

  explicit CountingCcModel(Pid nprocs)
      : nprocs_(nprocs), counters_(nprocs), caches_(nprocs) {}

  CountingCcModel(const CountingCcModel&) = delete;
  CountingCcModel& operator=(const CountingCcModel&) = delete;

  Pid nprocs() const { return nprocs_; }

  /// Install (or clear) the scheduler gate. Must not race with operations.
  void set_hook(ScheduleHook* hook) { hook_ = hook; }
  ScheduleHook* hook() const { return hook_; }

  /// Allocate `n` *contiguous* words initialized to `init`. Each request
  /// gets its own block (a vector inside a deque of blocks), so returned
  /// pointers are stable for the model's lifetime and w[0..n) is valid
  /// pointer arithmetic.
  Word* alloc(std::size_t n, std::uint64_t init = 0) {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    blocks_.emplace_back(n);
    std::vector<Word>& block = blocks_.back();
    for (std::size_t i = 0; i < n; ++i) {
      block[i].value = init;
      block[i].id = static_cast<std::uint32_t>(next_id_++);
    }
    return block.data();
  }

  /// Locality-annotated allocation (DSM vocabulary). The CC model has no
  /// permanent locality (caching handles it), so this forwards to alloc().
  Word* alloc_owned(Pid /*owner*/, std::size_t n, std::uint64_t init = 0) {
    return alloc(n, init);
  }

  /// Allocate a gated abort signal (model::Signal). The signal's id is drawn
  /// from the same address space as word ids so step footprints can name it;
  /// the returned pointer is stable for the model's lifetime.
  Signal* alloc_signal() {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    signals_.emplace_back();
    Signal& s = signals_.back();
    s.id = next_id_++;
    signal_ids_.emplace(&s.flag, s.id);
    return &s;
  }

  /// Raise an abort signal as a gated, footprinted step of process `p`.
  /// This is the adversary's action in the paper's model (no RMR charge),
  /// but unlike a plain atomic store it is visible to the scheduler and to
  /// partial-order reduction: the raise conflicts with every wait watching
  /// the signal, so reduced exploration still reorders abort deliveries
  /// against the waits they interrupt.
  void raise_signal(Pid p, Signal& s) {
    gate(p, Footprint{s.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    s.flag.store(true, std::memory_order_release);
  }

  /// Footprint address of a stop flag: the signal id if `stop` belongs to a
  /// Signal allocated from this model, kNoAddr otherwise (plain atomics stay
  /// usable, they are just invisible to reduction).
  std::uint64_t signal_addr(const std::atomic<bool>* stop) const {
    if (stop == nullptr) return Footprint::kNoAddr;
    std::lock_guard<std::mutex> guard(alloc_mu_);
    const auto it = signal_ids_.find(stop);
    return it == signal_ids_.end() ? Footprint::kNoAddr : it->second;
  }

  std::uint64_t read(Pid p, Word& w) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kRead,
                      Footprint::Kind::kNone});
    const auto [value, version] = load_pair(w);
    account_read(p, w, version);
    return value;
  }

  void write(Pid p, Word& w, std::uint64_t x) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    w.value = x;
    const std::uint64_t nv =
        w.version.fetch_add(1, std::memory_order_release) + 1;
    unlock_word(w);
    auto& c = counters(p);
    c.writes++;
    c.rmrs++;
    cache_set(p, w, nv);
  }

  std::uint64_t faa(Pid p, Word& w, std::uint64_t delta) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    const std::uint64_t old = w.value;
    w.value = old + delta;
    const std::uint64_t nv =
        w.version.fetch_add(1, std::memory_order_release) + 1;
    unlock_word(w);
    auto& c = counters(p);
    c.faas++;
    c.rmrs++;
    cache_set(p, w, nv);
    return old;
  }

  bool cas(Pid p, Word& w, std::uint64_t expected, std::uint64_t desired) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    const bool ok = (w.value == expected);
    if (ok) w.value = desired;
    // Per the paper's model a CAS invalidates readers whether or not it
    // succeeds ("another process performed a write, CAS, or F&A to w").
    const std::uint64_t nv =
        w.version.fetch_add(1, std::memory_order_release) + 1;
    unlock_word(w);
    auto& c = counters(p);
    c.cas_attempts++;
    if (!ok) c.cas_failures++;
    c.rmrs++;
    cache_set(p, w, nv);
    return ok;
  }

  std::uint64_t swap(Pid p, Word& w, std::uint64_t x) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    const std::uint64_t old = w.value;
    w.value = x;
    const std::uint64_t nv =
        w.version.fetch_add(1, std::memory_order_release) + 1;
    unlock_word(w);
    auto& c = counters(p);
    c.swaps++;
    c.rmrs++;
    cache_set(p, w, nv);
    return old;
  }

  /// Busy-wait until pred(value) holds or the stop flag is raised. While the
  /// process' cached copy stays valid, re-checks are local (free); each
  /// invalidation-triggered re-read costs one RMR, exactly the CC busy-wait
  /// cost model the paper charges.
  template <typename Pred>
  WaitOutcome wait(Pid p, Word& w, Pred&& pred, const std::atomic<bool>* stop) {
    // The wait also reads the stop flag, so the step footprint carries the
    // signal's address (when registered): a concurrent raise_signal is then
    // a dependent step and reduction explores both orderings.
    const Footprint fp{w.id, signal_addr(stop), Footprint::Kind::kRead,
                       Footprint::Kind::kRead};
    for (;;) {
      gate(p, fp);
      const auto [value, version] = load_pair(w);
      account_read(p, w, version);
      if (pred(value)) return {value, false};
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return {value, true};
      }
      counters(p).wait_wakeups++;
      block_until_changed(p, w, version, stop);
    }
  }

  /// Busy-wait on TWO words: return as soon as pred1(value of w1) or
  /// pred2(value of w2) holds, or the stop flag is raised with neither
  /// predicate true. Needed by read/write-only algorithms (Peterson locks)
  /// whose exit condition spans two variables. RMR accounting is identical
  /// to wait(): re-checks are local until one of the words is invalidated.
  template <typename Pred1, typename Pred2>
  WaitOutcome2 wait_either(Pid p, Word& w1, Pred1&& pred1, Word& w2,
                           Pred2&& pred2, const std::atomic<bool>* stop) {
    const std::uint64_t stop_addr = signal_addr(stop);
    const Footprint fp1{w1.id, stop_addr, Footprint::Kind::kRead,
                        Footprint::Kind::kRead};
    const Footprint fp2{w2.id, stop_addr, Footprint::Kind::kRead,
                        Footprint::Kind::kRead};
    for (;;) {
      gate(p, fp1);
      const auto [v1, ver1] = load_pair(w1);
      account_read(p, w1, ver1);
      if (pred1(v1)) return {v1, 0, false};
      gate(p, fp2);
      const auto [v2, ver2] = load_pair(w2);
      account_read(p, w2, ver2);
      if (pred2(v2)) return {v1, v2, false};
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return {v1, v2, true};
      }
      counters(p).wait_wakeups++;
      if (hook_ != nullptr) {
        hook_->on_block(p, &w1.version, ver1, stop, &w2.version, ver2);
      } else {
        pal::Backoff backoff;
        while (w1.version.load(std::memory_order_acquire) == ver1 &&
               w2.version.load(std::memory_order_acquire) == ver2 &&
               !(stop != nullptr &&
                 stop->load(std::memory_order_acquire))) {
          backoff.pause();
        }
      }
    }
  }

  // --- accounting -----------------------------------------------------

  const OpCounters& counters(Pid p) const { return *counters_[p]; }
  OpCounters& counters(Pid p) { return *counters_[p]; }

  OpCounters total_counters() const {
    OpCounters total;
    for (Pid p = 0; p < nprocs_; ++p) total += *counters_[p];
    return total;
  }

  void reset_counters() {
    for (Pid p = 0; p < nprocs_; ++p) *counters_[p] = OpCounters{};
  }

  std::size_t words_allocated() const {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    return next_id_;
  }

  /// Harness-only: set a word without gating or accounting. Used by
  /// scheduler callbacks (which are not processes) to open coordination
  /// gates; bumps the version so parked waiters become runnable.
  void poke(Word& w, std::uint64_t x) {
    lock_word(w);
    w.value = x;
    w.version.fetch_add(1, std::memory_order_release);
    unlock_word(w);
  }

  /// Test probe: current value of a word without accounting or gating.
  std::uint64_t peek(const Word& w) const {
    Word& mut = const_cast<Word&>(w);
    lock_word(mut);
    const std::uint64_t v = mut.value;
    unlock_word(mut);
    return v;
  }

 private:
  /// Announce the step's footprint, then gate. The announcement always
  /// precedes the matching on_step() so a scheduler can attach the footprint
  /// to the grant decision it is about to make.
  void gate(Pid p, const Footprint& f) {
    if (hook_ != nullptr) {
      hook_->on_footprint(p, f);
      hook_->on_step(p);
    }
  }

  static void lock_word(Word& w) {
    pal::Backoff backoff;
    while (w.lock.exchange(1, std::memory_order_acquire) != 0) {
      backoff.pause();
    }
  }
  static void unlock_word(Word& w) {
    w.lock.store(0, std::memory_order_release);
  }

  /// Atomically read (value, version).
  static std::pair<std::uint64_t, std::uint64_t> load_pair(Word& w) {
    lock_word(w);
    const std::uint64_t value = w.value;
    const std::uint64_t version = w.version.load(std::memory_order_relaxed);
    unlock_word(w);
    return {value, version};
  }

  /// Charge a read of word `w` at version `version` to process p.
  /// The per-process cache table is sparse: a process only ever caches the
  /// words it touched, which for this paper's algorithms is O(log_W N) per
  /// passage — a dense table over all words would dominate memory at
  /// N = 4096-process simulations.
  void account_read(Pid p, Word& w, std::uint64_t version) {
    auto& c = counters(p);
    c.reads++;
    auto& cache = *caches_[p];
    auto [it, inserted] = cache.try_emplace(w.id, version + 1);
    if (!inserted && it->second == version + 1) {
      c.local_reads++;
    } else {
      c.rmrs++;
      it->second = version + 1;
    }
  }

  /// Mark p's cached copy valid at version `version` (after p's own
  /// mutation: the line is in p's cache in modified state).
  void cache_set(Pid p, Word& w, std::uint64_t version) {
    (*caches_[p])[w.id] = version + 1;
  }

  /// Park until the word is mutated past `seen_version` or the stop flag is
  /// raised. Delegates to the scheduler hook when installed.
  void block_until_changed(Pid p, Word& w, std::uint64_t seen_version,
                           const std::atomic<bool>* stop) {
    if (hook_ != nullptr) {
      hook_->on_block(p, &w.version, seen_version, stop);
      return;
    }
    pal::Backoff backoff;
    while (w.version.load(std::memory_order_acquire) == seen_version &&
           !(stop != nullptr && stop->load(std::memory_order_acquire))) {
      backoff.pause();
    }
  }

  Pid nprocs_;
  ScheduleHook* hook_ = nullptr;
  mutable std::mutex alloc_mu_;
  std::deque<std::vector<Word>> blocks_;  // one block per alloc; stable
  std::deque<Signal> signals_;            // stable addresses, ids in word space
  std::unordered_map<const std::atomic<bool>*, std::uint64_t> signal_ids_;
  std::size_t next_id_ = 0;
  std::vector<pal::CachePadded<OpCounters>> counters_;
  // Per-process cache-validity table, touched only by the owning process.
  std::vector<pal::CachePadded<std::unordered_map<std::uint32_t, std::uint64_t>>>
      caches_;
};

}  // namespace aml::model
