// aml::model::ord — ordered-vocabulary shims over any word space.
//
// Core algorithms speak the model vocabulary (read/write/faa/cas/swap/wait),
// not raw atomics, so a per-edge relaxation cannot be expressed by editing a
// memory_order argument at the call site. These free functions bridge the
// gap: `ord::write_rel(space, self, word, x)` lowers to the space's
// `write_rel` when it has one (NativeModel, and the spaces that forward to
// it) and falls back to the seq_cst `write` otherwise. The counting/sched
// models deliberately do NOT implement the ordered members: under the
// paper's seq_cst register model there is nothing to relax, the fallback
// keeps their RMR/step accounting byte-identical, and the model checker
// explores exactly the executions it always did.
//
// Every call through these shims is an edge endpoint and must carry an
// AML_V_EDGE/AML_X_EDGE/AML_RELAXED annotation at the call site (amlint R8);
// see aml/pal/edges.hpp and docs/MEMORY_MODEL.md.
#pragma once

#include <cstdint>

#include "aml/model/types.hpp"
#include "aml/pal/edges.hpp"

namespace aml::model::ord {

/// Acquire load (falls back to seq_cst read). Acquire-side edge endpoint.
template <typename S, typename W>
std::uint64_t read_acq(S& space, Pid self, W& w) {
  if constexpr (requires { space.read_acq(self, w); }) {
    return space.read_acq(self, w);
  } else {
    return space.read(self, w);
  }
}

/// Relaxed load (falls back to seq_cst read). Requires AML_RELAXED.
template <typename S, typename W>
std::uint64_t read_rlx(S& space, Pid self, W& w) {
  if constexpr (requires { space.read_rlx(self, w); }) {
    return space.read_rlx(self, w);
  } else {
    return space.read(self, w);
  }
}

/// Release store (falls back to seq_cst write). Release-side edge endpoint.
template <typename S, typename W>
void write_rel(S& space, Pid self, W& w, std::uint64_t x) {
  if constexpr (requires { space.write_rel(self, w, x); }) {
    space.write_rel(self, w, x);
  } else {
    space.write(self, w, x);
  }
}

/// Relaxed store (falls back to seq_cst write). Requires AML_RELAXED.
template <typename S, typename W>
void write_rlx(S& space, Pid self, W& w, std::uint64_t x) {
  if constexpr (requires { space.write_rlx(self, w, x); }) {
    space.write_rlx(self, w, x);
  } else {
    space.write(self, w, x);
  }
}

// There are intentionally no relaxed RMW shims: every F&A/CAS/swap in the
// algorithms is either a synchronization point (queue append, hand-off
// switch, recoverable-journal install) or participates in a Dekker-shaped
// pattern, and both need the full seq_cst fence semantics. A future edge
// that genuinely licenses an acq_rel RMW should add the shim together with
// its manifest entry and litmus test, not reuse these.

}  // namespace aml::model::ord
