// Concepts describing what the lock templates require of a memory model.
//
// WordSpace is the minimal vocabulary of the one-shot lock and the Tree:
// allocation plus read/write/F&A (the paper's one-shot algorithm, Sections 3
// and 4, uses only these). MemoryModel extends it with CAS and SWAP, needed
// by the long-lived transformation (Section 6) and by the baseline locks.
//
// wait() is an additional template member on every model/space (busy-wait
// with stop flag); being a member template it cannot be expressed in the
// concept directly, so it is part of the documented contract instead.
#pragma once

#include <concepts>
#include <cstdint>

#include "aml/model/types.hpp"

namespace aml::model {

template <typename S>
concept WordSpace = requires(S& s, typename S::Word& w, Pid p,
                             std::uint64_t x, std::size_t n) {
  { s.alloc(n, x) } -> std::same_as<typename S::Word*>;
  { s.read(p, w) } -> std::convertible_to<std::uint64_t>;
  s.write(p, w, x);
  { s.faa(p, w, x) } -> std::convertible_to<std::uint64_t>;
};

template <typename M>
concept MemoryModel =
    WordSpace<M> && requires(M& m, typename M::Word& w, Pid p,
                             std::uint64_t x) {
      { m.cas(p, w, x, x) } -> std::convertible_to<bool>;
      { m.swap(p, w, x) } -> std::convertible_to<std::uint64_t>;
    };

}  // namespace aml::model
