// Shared vocabulary for the memory models: process ids, per-process operation
// counters (the RMR bookkeeping of Section 2 of the paper), wait outcomes,
// and the scheduler hook that lets a deterministic scheduler gate every
// shared-memory step.
#pragma once

#include <atomic>
#include <cstdint>

namespace aml::model {

/// Process identifier. The paper's N processes are 0..N-1.
using Pid = std::uint32_t;
inline constexpr Pid kNoPid = ~Pid{0};

/// Per-process operation counts. `rmrs` implements the paper's RMR measure:
/// in the CC model every write/CAS/F&A is an RMR, and a read is an RMR iff it
/// is the process' first read of the word or the word was mutated by another
/// process since the process' last access; in the DSM model any access to a
/// word owned by another process is an RMR.
struct OpCounters {
  std::uint64_t reads = 0;        ///< All read operations.
  std::uint64_t local_reads = 0;  ///< Reads satisfied from the local cache.
  std::uint64_t writes = 0;
  std::uint64_t faas = 0;
  std::uint64_t cas_attempts = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t swaps = 0;
  std::uint64_t rmrs = 0;  ///< Remote memory references per the model rules.
  std::uint64_t wait_wakeups = 0;  ///< Times a busy-wait was re-evaluated.
  /// DSM only: busy-wait episodes on a word not local to the waiter. The
  /// paper's point in Section 3 ("DSM variant") is that these are unbounded;
  /// the DSM variant of the lock must keep this at zero.
  std::uint64_t remote_spin_episodes = 0;

  OpCounters& operator+=(const OpCounters& o) {
    reads += o.reads;
    local_reads += o.local_reads;
    writes += o.writes;
    faas += o.faas;
    cas_attempts += o.cas_attempts;
    cas_failures += o.cas_failures;
    swaps += o.swaps;
    rmrs += o.rmrs;
    wait_wakeups += o.wait_wakeups;
    remote_spin_episodes += o.remote_spin_episodes;
    return *this;
  }

  std::uint64_t steps() const {
    return reads + writes + faas + cas_attempts + swaps;
  }
};

/// Result of a Model::wait() busy-wait: the last value read, and whether the
/// wait ended because the stop flag was raised rather than the predicate
/// becoming true. If the predicate holds for `value`, `stopped` is false even
/// if the stop flag is also up (the lock hand-off wins, matching footnote 2
/// of the paper).
struct WaitOutcome {
  std::uint64_t value = 0;
  bool stopped = false;
};

/// Result of a Model::wait_either() on two words (needed by read/write-only
/// algorithms such as Peterson locks, whose exit condition spans two
/// variables).
struct WaitOutcome2 {
  std::uint64_t value1 = 0;
  std::uint64_t value2 = 0;
  bool stopped = false;
};

/// Memory footprint of one shared-memory step, announced to the scheduler
/// hook just before the step gates. Partial-order reduction (aml/sched)
/// uses footprints to decide which steps commute: two steps are dependent
/// iff they touch a common address and at least one mutates it. Addresses
/// are the models' stable word/signal ids, not raw pointers, so they are
/// identical across replayed executions of the same workload.
///
/// A step may touch up to two addresses (wait_either rounds, and waits that
/// also watch a registered abort signal). `kind == Kind::kNone` marks an
/// unknown footprint, which is conservatively dependent with everything.
struct Footprint {
  enum class Kind : std::uint8_t {
    kNone = 0,    ///< unknown — conservatively dependent with every step
    kRead = 1,    ///< read (including busy-wait re-reads)
    kMutate = 2,  ///< write / F&A / CAS / SWAP / signal raise
  };
  static constexpr std::uint64_t kNoAddr = ~std::uint64_t{0};

  std::uint64_t addr = kNoAddr;
  std::uint64_t addr2 = kNoAddr;
  Kind kind = Kind::kNone;
  Kind kind2 = Kind::kNone;

  bool known() const { return kind != Kind::kNone; }
};

/// Two steps are dependent (do not commute) iff both footprints are known
/// and some address appears in both with at least one side mutating it.
/// Unknown footprints are dependent with everything, which keeps reduction
/// sound for steps the models cannot classify.
inline bool footprints_dependent(const Footprint& a, const Footprint& b) {
  if (!a.known() || !b.known()) return true;
  const std::uint64_t aa[2] = {a.addr, a.addr2};
  const Footprint::Kind ak[2] = {a.kind, a.kind2};
  const std::uint64_t ba[2] = {b.addr, b.addr2};
  const Footprint::Kind bk[2] = {b.kind, b.kind2};
  for (int i = 0; i < 2; ++i) {
    if (aa[i] == Footprint::kNoAddr) continue;
    for (int j = 0; j < 2; ++j) {
      if (ba[j] == Footprint::kNoAddr || aa[i] != ba[j]) continue;
      if (ak[i] == Footprint::Kind::kMutate ||
          bk[j] == Footprint::Kind::kMutate) {
        return true;
      }
    }
  }
  return false;
}

/// A gated abort/stop flag. Unlike a plain std::atomic<bool>, a Signal is
/// allocated by a counting model, carries a stable footprint address, and is
/// raised through a *gated, footprinted* model step — which is what lets
/// partial-order reduction see the race between an abort signal and the wait
/// it interrupts. Workloads explored with DPOR must use Signals for abort
/// delivery; plain atomics remain fine for the unreduced explorer.
struct Signal {
  std::atomic<bool> flag{false};
  std::uint64_t id = Footprint::kNoAddr;
};

/// Hook that a deterministic scheduler installs into a counting model. Every
/// shared-memory operation calls on_step() before executing; a busy wait
/// parks in on_block() instead of spinning. With at most one process granted
/// at a time this serializes the execution and makes it exactly reproducible
/// from a seed.
class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;

  /// Announce the memory footprint of process `p`'s *next* gated step. Called
  /// immediately before the matching on_step(); hooks that do not track
  /// footprints can ignore it.
  virtual void on_footprint(Pid /*p*/, const Footprint& /*f*/) {}

  /// Gate before one shared-memory operation by process `p`. Returns when
  /// the scheduler grants the step.
  virtual void on_step(Pid p) = 0;

  /// Park process `p` until `*version != seen_version` (the awaited word was
  /// mutated), or — when `version2` is non-null — `*version2 != seen2`, or
  /// `stop && stop->load()` (an abort signal arrived). The model re-reads
  /// after this returns.
  virtual void on_block(Pid p, const std::atomic<std::uint64_t>* version,
                        std::uint64_t seen_version,
                        const std::atomic<bool>* stop,
                        const std::atomic<std::uint64_t>* version2 = nullptr,
                        std::uint64_t seen2 = 0) = 0;
};

}  // namespace aml::model
