// NativeModel: the production memory model. Words are cacheline-padded
// std::atomic<uint64_t>; operations map 1:1 to hardware atomics.
//
// The paper states its algorithms for a sequentially consistent atomic-
// register model, so the base vocabulary (read/write/faa/cas/swap) is
// seq_cst. On top of it the model exposes an *ordered* vocabulary —
// read_acq / read_rlx / write_rel / write_rlx and an acquire-spinning
// wait() — that the algorithms use only at call sites whose weaker order is
// justified by a named happens-before edge (see aml/pal/edges.hpp, the
// tools/edges.toml manifest, and docs/MEMORY_MODEL.md; amlint R8/R9 enforce
// the discipline). The ordered primitives here are the *carriers*: the
// concrete edge is named where they are called, and the carrier pair below
// is itself the `model.native.carrier` manifest entry, litmus-tested as a
// raw message-passing idiom in tests/litmus.
//
// BasicNativeModel<false> (alias NativeModelSeqCst) compiles every carrier
// back to seq_cst — the pre-relaxation baseline. bench_native_throughput
// runs both and gates the relaxed path against the seq_cst twin, so the
// relaxation's value stays measured, not assumed.
//
// This model performs no accounting; instantiating the lock templates with
// it yields the deployable library (aml::AbortableLock).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "aml/pal/backoff.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/edges.hpp"
#include "aml/model/types.hpp"

namespace aml::model {

/// `Relaxed` selects the memory-ordering regime of the ordered vocabulary:
/// true (the production default) lowers read_acq/write_rel/wait to real
/// acquire/release hardware orders; false lowers everything to seq_cst,
/// reproducing the conservative pre-relaxation model for A/B measurement.
template <bool Relaxed>
class BasicNativeModel {
 public:
  /// One shared word. Padded to a cache line so that the per-slot spin words
  /// of the queue lock do not false-share, which the CC cost model assumes.
  struct alignas(pal::kCacheLine) Word {
    std::atomic<std::uint64_t> v{0};
  };

  explicit BasicNativeModel(Pid nprocs = 1) : nprocs_(nprocs) {}

  BasicNativeModel(const BasicNativeModel&) = delete;
  BasicNativeModel& operator=(const BasicNativeModel&) = delete;

  Pid nprocs() const { return nprocs_; }

  /// Allocate `n` *contiguous* words initialized to `init`. Each request is
  /// its own block, so addresses are stable for the model's lifetime and
  /// w[0..n) is valid pointer arithmetic.
  Word* alloc(std::size_t n, std::uint64_t init = 0) {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    blocks_.emplace_back(n);
    std::vector<Word>& block = blocks_.back();
    for (std::size_t i = 0; i < n; ++i) {
      // Pre-publication: the block escapes only through the caller's own
      // pointer; sharing it with other processes is the caller's edge.
      block[i].v.store(init, std::memory_order_relaxed);  // AML_RELAXED(init before the block is shared)
    }
    total_words_ += n;
    return block.data();
  }

  /// Locality-annotated allocation (DSM vocabulary). Native hardware has no
  /// permanent locality, so this forwards to alloc(); it exists so that the
  /// DSM lock variant instantiates on every model.
  Word* alloc_owned(Pid /*owner*/, std::size_t n, std::uint64_t init = 0) {
    return alloc(n, init);
  }

  // --- base vocabulary (seq_cst, the paper's register model) -------------

  std::uint64_t read(Pid, Word& w) const {
    return w.v.load(std::memory_order_seq_cst);
  }

  void write(Pid, Word& w, std::uint64_t x) {
    w.v.store(x, std::memory_order_seq_cst);
  }

  std::uint64_t faa(Pid, Word& w, std::uint64_t delta) {
    return w.v.fetch_add(delta, std::memory_order_seq_cst);
  }

  bool cas(Pid, Word& w, std::uint64_t expected, std::uint64_t desired) {
    return w.v.compare_exchange_strong(expected, desired,
                                       std::memory_order_seq_cst);
  }

  std::uint64_t swap(Pid, Word& w, std::uint64_t x) {
    return w.v.exchange(x, std::memory_order_seq_cst);
  }

  // --- ordered vocabulary (edge carriers; see file header) ---------------

  /// Acquire-side carrier: the caller names the edge (amlint R8).
  std::uint64_t read_acq(Pid, Word& w) const {
    if constexpr (Relaxed) {
      return w.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
    } else {
      return w.v.load(std::memory_order_seq_cst);
    }
  }

  /// Unordered read: only for values re-validated by a later synchronizing
  /// operation, or owner-local state (justified AML_RELAXED at call sites).
  std::uint64_t read_rlx(Pid, Word& w) const {
    if constexpr (Relaxed) {
      return w.v.load(std::memory_order_relaxed);  // AML_RELAXED(carrier; justification at call sites)
    } else {
      return w.v.load(std::memory_order_seq_cst);
    }
  }

  /// Release-side carrier: the caller names the edge (amlint R8).
  void write_rel(Pid, Word& w, std::uint64_t x) {
    if constexpr (Relaxed) {
      w.v.store(x, std::memory_order_release);  // AML_V_EDGE(model.native.carrier)
    } else {
      w.v.store(x, std::memory_order_seq_cst);
    }
  }

  /// Unordered write: pre-publication initialization or values published by
  /// a later release (justified AML_RELAXED at call sites).
  void write_rlx(Pid, Word& w, std::uint64_t x) {
    if constexpr (Relaxed) {
      w.v.store(x, std::memory_order_relaxed);  // AML_RELAXED(carrier; justification at call sites)
    } else {
      w.v.store(x, std::memory_order_seq_cst);
    }
  }

  /// Busy-wait until pred(value) holds or the stop flag is raised. The
  /// predicate is evaluated on fresh loads; lock hand-off wins ties with the
  /// stop flag.
  ///
  /// The spin load is the acquire side of every hand-off edge: the waiter
  /// leaves the loop only after observing a value some release-side store
  /// published, so everything sequenced before that store is visible here.
  /// Callers name the concrete edge (amlint R8 requires a tag on every
  /// wait() call in the covered paths).
  template <typename Pred>
  WaitOutcome wait(Pid, Word& w, Pred&& pred,
                   const std::atomic<bool>* stop) const {
    pal::Backoff backoff;
    for (;;) {
      std::uint64_t v;
      if constexpr (Relaxed) {
        v = w.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
      } else {
        v = w.v.load(std::memory_order_seq_cst);
      }
      if (pred(v)) return {v, false};
      if (stop != nullptr &&
          stop->load(std::memory_order_acquire)) {  // AML_X_EDGE(core.abort_signal)
        return {v, true};
      }
      backoff.pause();
    }
  }

  /// Two-word busy-wait (see CountingCcModel::wait_either).
  template <typename Pred1, typename Pred2>
  WaitOutcome2 wait_either(Pid, Word& w1, Pred1&& pred1, Word& w2,
                           Pred2&& pred2,
                           const std::atomic<bool>* stop) const {
    pal::Backoff backoff;
    for (;;) {
      std::uint64_t v1;
      std::uint64_t v2;
      if constexpr (Relaxed) {
        v1 = w1.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
        if (pred1(v1)) return {v1, 0, false};
        v2 = w2.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
      } else {
        v1 = w1.v.load(std::memory_order_seq_cst);
        if (pred1(v1)) return {v1, 0, false};
        v2 = w2.v.load(std::memory_order_seq_cst);
      }
      if (pred2(v2)) return {v1, v2, false};
      if (stop != nullptr &&
          stop->load(std::memory_order_acquire)) {  // AML_X_EDGE(core.abort_signal)
        return {v1, v2, true};
      }
      backoff.pause();
    }
  }

  /// Number of words allocated so far (space-accounting hook shared with the
  /// counting models so bench_table1_space works on any model).
  std::size_t words_allocated() const {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    return total_words_;
  }

 private:
  Pid nprocs_;
  mutable std::mutex alloc_mu_;
  std::deque<std::vector<Word>> blocks_;  // one block per alloc; stable
  std::size_t total_words_ = 0;
};

/// The production model: per-edge acquire/release on the justified paths.
using NativeModel = BasicNativeModel<true>;

/// The conservative twin: every carrier lowered to seq_cst. Exists for A/B
/// measurement (bench_native_throughput's relaxation gate) and for
/// bisecting a suspected ordering bug back to the strong baseline.
using NativeModelSeqCst = BasicNativeModel<false>;

}  // namespace aml::model
