// NativeModel: the production memory model. Words are cacheline-padded
// std::atomic<uint64_t>; operations map 1:1 to hardware atomics with
// sequentially consistent ordering (the algorithms in the paper are stated
// for an atomic-register model, so we do not weaken orderings).
//
// This model performs no accounting; instantiating the lock templates with
// it yields the deployable library (aml::AbortableLock).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "aml/pal/backoff.hpp"
#include "aml/pal/cache.hpp"
#include "aml/model/types.hpp"

namespace aml::model {

class NativeModel {
 public:
  /// One shared word. Padded to a cache line so that the per-slot spin words
  /// of the queue lock do not false-share, which the CC cost model assumes.
  struct alignas(pal::kCacheLine) Word {
    std::atomic<std::uint64_t> v{0};
  };

  explicit NativeModel(Pid nprocs = 1) : nprocs_(nprocs) {}

  NativeModel(const NativeModel&) = delete;
  NativeModel& operator=(const NativeModel&) = delete;

  Pid nprocs() const { return nprocs_; }

  /// Allocate `n` *contiguous* words initialized to `init`. Each request is
  /// its own block, so addresses are stable for the model's lifetime and
  /// w[0..n) is valid pointer arithmetic.
  Word* alloc(std::size_t n, std::uint64_t init = 0) {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    blocks_.emplace_back(n);
    std::vector<Word>& block = blocks_.back();
    for (std::size_t i = 0; i < n; ++i) {
      block[i].v.store(init, std::memory_order_relaxed);
    }
    total_words_ += n;
    return block.data();
  }

  /// Locality-annotated allocation (DSM vocabulary). Native hardware has no
  /// permanent locality, so this forwards to alloc(); it exists so that the
  /// DSM lock variant instantiates on every model.
  Word* alloc_owned(Pid /*owner*/, std::size_t n, std::uint64_t init = 0) {
    return alloc(n, init);
  }

  std::uint64_t read(Pid, Word& w) const {
    return w.v.load(std::memory_order_seq_cst);
  }

  void write(Pid, Word& w, std::uint64_t x) {
    w.v.store(x, std::memory_order_seq_cst);
  }

  std::uint64_t faa(Pid, Word& w, std::uint64_t delta) {
    return w.v.fetch_add(delta, std::memory_order_seq_cst);
  }

  bool cas(Pid, Word& w, std::uint64_t expected, std::uint64_t desired) {
    return w.v.compare_exchange_strong(expected, desired,
                                       std::memory_order_seq_cst);
  }

  std::uint64_t swap(Pid, Word& w, std::uint64_t x) {
    return w.v.exchange(x, std::memory_order_seq_cst);
  }

  /// Busy-wait until pred(value) holds or the stop flag is raised. The
  /// predicate is evaluated on fresh loads; lock hand-off wins ties with the
  /// stop flag.
  template <typename Pred>
  WaitOutcome wait(Pid, Word& w, Pred&& pred,
                   const std::atomic<bool>* stop) const {
    pal::Backoff backoff;
    for (;;) {
      const std::uint64_t v = w.v.load(std::memory_order_seq_cst);
      if (pred(v)) return {v, false};
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return {v, true};
      }
      backoff.pause();
    }
  }

  /// Two-word busy-wait (see CountingCcModel::wait_either).
  template <typename Pred1, typename Pred2>
  WaitOutcome2 wait_either(Pid, Word& w1, Pred1&& pred1, Word& w2,
                           Pred2&& pred2,
                           const std::atomic<bool>* stop) const {
    pal::Backoff backoff;
    for (;;) {
      const std::uint64_t v1 = w1.v.load(std::memory_order_seq_cst);
      if (pred1(v1)) return {v1, 0, false};
      const std::uint64_t v2 = w2.v.load(std::memory_order_seq_cst);
      if (pred2(v2)) return {v1, v2, false};
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return {v1, v2, true};
      }
      backoff.pause();
    }
  }

  /// Number of words allocated so far (space-accounting hook shared with the
  /// counting models so bench_table1_space works on any model).
  std::size_t words_allocated() const {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    return total_words_;
  }

 private:
  Pid nprocs_;
  mutable std::mutex alloc_mu_;
  std::deque<std::vector<Word>> blocks_;  // one block per alloc; stable
  std::size_t total_words_ = 0;
};

}  // namespace aml::model
