// CountingDsmModel: a simulated distributed shared memory implementing the
// paper's DSM RMR accounting (Section 2): every word is permanently local to
// one process (its owner) and remote to all others; any access (read or
// mutation) to a remote word is one RMR; accesses to local words are free.
//
// Busy-waiting on a *remote* word is the failure mode the paper's DSM lock
// variant exists to avoid: each re-check of a remote word is an RMR, and the
// number of re-checks is unbounded. The model surfaces this through the
// `remote_spin_episodes` counter (each wait() on a remote word counts one
// episode) in addition to charging an RMR per wakeup re-read; the DSM
// variant of the one-shot lock must keep episodes at zero.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "aml/pal/backoff.hpp"
#include "aml/pal/cache.hpp"
#include "aml/model/types.hpp"

namespace aml::model {

class CountingDsmModel {
 public:
  struct Word {
    std::atomic<std::uint32_t> lock{0};
    std::atomic<std::uint64_t> version{0};
    std::uint64_t value = 0;
    std::uint32_t id = 0;  ///< dense id, stable across replays (footprints)
    Pid owner = kNoPid;    ///< the process this word is local to
  };

  explicit CountingDsmModel(Pid nprocs)
      : nprocs_(nprocs), counters_(nprocs) {}

  CountingDsmModel(const CountingDsmModel&) = delete;
  CountingDsmModel& operator=(const CountingDsmModel&) = delete;

  Pid nprocs() const { return nprocs_; }

  void set_hook(ScheduleHook* hook) { hook_ = hook; }
  ScheduleHook* hook() const { return hook_; }

  /// Allocate `n` words local to `owner` (kNoPid = local to nobody, e.g.
  /// dynamically-assigned queue slots whose locality cannot be guaranteed).
  Word* alloc_owned(Pid owner, std::size_t n, std::uint64_t init = 0) {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    blocks_.emplace_back(n);
    std::vector<Word>& block = blocks_.back();
    for (std::size_t i = 0; i < n; ++i) {
      block[i].value = init;
      block[i].id = static_cast<std::uint32_t>(next_id_++);
      block[i].owner = owner;
    }
    total_words_ += n;
    return block.data();
  }

  /// Allocate a gated abort signal (see CountingCcModel::alloc_signal).
  Signal* alloc_signal() {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    signals_.emplace_back();
    Signal& s = signals_.back();
    s.id = next_id_++;
    signal_ids_.emplace(&s.flag, s.id);
    return &s;
  }

  /// Raise an abort signal as a gated, footprinted step of process `p`
  /// (see CountingCcModel::raise_signal).
  void raise_signal(Pid p, Signal& s) {
    gate(p, Footprint{s.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    s.flag.store(true, std::memory_order_release);
  }

  /// Footprint address of a stop flag; kNoAddr when unregistered.
  std::uint64_t signal_addr(const std::atomic<bool>* stop) const {
    if (stop == nullptr) return Footprint::kNoAddr;
    std::lock_guard<std::mutex> guard(alloc_mu_);
    const auto it = signal_ids_.find(stop);
    return it == signal_ids_.end() ? Footprint::kNoAddr : it->second;
  }

  /// Model-concept alloc: words local to nobody (always remote). The lock
  /// templates use this for central variables (Tail, Head, tree nodes, ...)
  /// whose accessor set is unbounded.
  Word* alloc(std::size_t n, std::uint64_t init = 0) {
    return alloc_owned(kNoPid, n, init);
  }

  std::uint64_t read(Pid p, Word& w) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kRead,
                      Footprint::Kind::kNone});
    const auto [value, version] = load_pair(w);
    (void)version;
    auto& c = counters(p);
    c.reads++;
    if (w.owner == p) {
      c.local_reads++;
    } else {
      c.rmrs++;
    }
    return value;
  }

  void write(Pid p, Word& w, std::uint64_t x) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    w.value = x;
    w.version.fetch_add(1, std::memory_order_release);
    unlock_word(w);
    auto& c = counters(p);
    c.writes++;
    if (w.owner != p) c.rmrs++;
  }

  std::uint64_t faa(Pid p, Word& w, std::uint64_t delta) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    const std::uint64_t old = w.value;
    w.value = old + delta;
    w.version.fetch_add(1, std::memory_order_release);
    unlock_word(w);
    auto& c = counters(p);
    c.faas++;
    if (w.owner != p) c.rmrs++;
    return old;
  }

  bool cas(Pid p, Word& w, std::uint64_t expected, std::uint64_t desired) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    const bool ok = (w.value == expected);
    if (ok) w.value = desired;
    w.version.fetch_add(1, std::memory_order_release);
    unlock_word(w);
    auto& c = counters(p);
    c.cas_attempts++;
    if (!ok) c.cas_failures++;
    if (w.owner != p) c.rmrs++;
    return ok;
  }

  std::uint64_t swap(Pid p, Word& w, std::uint64_t x) {
    gate(p, Footprint{w.id, Footprint::kNoAddr, Footprint::Kind::kMutate,
                      Footprint::Kind::kNone});
    lock_word(w);
    const std::uint64_t old = w.value;
    w.value = x;
    w.version.fetch_add(1, std::memory_order_release);
    unlock_word(w);
    auto& c = counters(p);
    c.swaps++;
    if (w.owner != p) c.rmrs++;
    return old;
  }

  template <typename Pred>
  WaitOutcome wait(Pid p, Word& w, Pred&& pred, const std::atomic<bool>* stop) {
    const Footprint fp{w.id, signal_addr(stop), Footprint::Kind::kRead,
                       Footprint::Kind::kRead};
    bool first = true;
    for (;;) {
      gate(p, fp);
      const auto [value, version] = load_pair(w);
      auto& c = counters(p);
      c.reads++;
      if (w.owner == p) {
        c.local_reads++;
      } else {
        c.rmrs++;
        if (first) c.remote_spin_episodes++;
      }
      first = false;
      if (pred(value)) return {value, false};
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return {value, true};
      }
      c.wait_wakeups++;
      block_until_changed(p, w, version, stop);
    }
  }

  /// Two-word busy-wait (see CountingCcModel::wait_either). In DSM each
  /// wakeup re-read of a remote word is an RMR; a wait on any remote word
  /// counts one remote-spin episode.
  template <typename Pred1, typename Pred2>
  WaitOutcome2 wait_either(Pid p, Word& w1, Pred1&& pred1, Word& w2,
                           Pred2&& pred2, const std::atomic<bool>* stop) {
    const std::uint64_t stop_addr = signal_addr(stop);
    const Footprint fp1{w1.id, stop_addr, Footprint::Kind::kRead,
                        Footprint::Kind::kRead};
    const Footprint fp2{w2.id, stop_addr, Footprint::Kind::kRead,
                        Footprint::Kind::kRead};
    bool first = true;
    for (;;) {
      gate(p, fp1);
      const auto [v1, ver1] = load_pair(w1);
      charge_read(p, w1, first);
      if (pred1(v1)) return {v1, 0, false};
      gate(p, fp2);
      const auto [v2, ver2] = load_pair(w2);
      charge_read(p, w2, first);
      first = false;
      if (pred2(v2)) return {v1, v2, false};
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return {v1, v2, true};
      }
      counters(p).wait_wakeups++;
      if (hook_ != nullptr) {
        hook_->on_block(p, &w1.version, ver1, stop, &w2.version, ver2);
      } else {
        pal::Backoff backoff;
        while (w1.version.load(std::memory_order_acquire) == ver1 &&
               w2.version.load(std::memory_order_acquire) == ver2 &&
               !(stop != nullptr &&
                 stop->load(std::memory_order_acquire))) {
          backoff.pause();
        }
      }
    }
  }

  const OpCounters& counters(Pid p) const { return *counters_[p]; }
  OpCounters& counters(Pid p) { return *counters_[p]; }

  OpCounters total_counters() const {
    OpCounters total;
    for (Pid p = 0; p < nprocs_; ++p) total += *counters_[p];
    return total;
  }

  void reset_counters() {
    for (Pid p = 0; p < nprocs_; ++p) *counters_[p] = OpCounters{};
  }

  std::size_t words_allocated() const {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    return total_words_;
  }

  /// Harness-only: set a word without gating or accounting (see
  /// CountingCcModel::poke).
  void poke(Word& w, std::uint64_t x) {
    lock_word(w);
    w.value = x;
    w.version.fetch_add(1, std::memory_order_release);
    unlock_word(w);
  }

  std::uint64_t peek(const Word& w) const {
    Word& mut = const_cast<Word&>(w);
    lock_word(mut);
    const std::uint64_t v = mut.value;
    unlock_word(mut);
    return v;
  }

 private:
  /// Announce the step's footprint, then gate (see CountingCcModel::gate).
  void gate(Pid p, const Footprint& f) {
    if (hook_ != nullptr) {
      hook_->on_footprint(p, f);
      hook_->on_step(p);
    }
  }

  /// Read accounting for wait_either (episode counted once per wait on a
  /// remote word).
  void charge_read(Pid p, Word& w, bool first_round) {
    auto& c = counters(p);
    c.reads++;
    if (w.owner == p) {
      c.local_reads++;
    } else {
      c.rmrs++;
      if (first_round) c.remote_spin_episodes++;
    }
  }

  static void lock_word(Word& w) {
    pal::Backoff backoff;
    while (w.lock.exchange(1, std::memory_order_acquire) != 0) {
      backoff.pause();
    }
  }
  static void unlock_word(Word& w) {
    w.lock.store(0, std::memory_order_release);
  }

  static std::pair<std::uint64_t, std::uint64_t> load_pair(Word& w) {
    lock_word(w);
    const std::uint64_t value = w.value;
    const std::uint64_t version = w.version.load(std::memory_order_relaxed);
    unlock_word(w);
    return {value, version};
  }

  void block_until_changed(Pid p, Word& w, std::uint64_t seen_version,
                           const std::atomic<bool>* stop) {
    if (hook_ != nullptr) {
      hook_->on_block(p, &w.version, seen_version, stop);
      return;
    }
    pal::Backoff backoff;
    while (w.version.load(std::memory_order_acquire) == seen_version &&
           !(stop != nullptr && stop->load(std::memory_order_acquire))) {
      backoff.pause();
    }
  }

  Pid nprocs_;
  ScheduleHook* hook_ = nullptr;
  mutable std::mutex alloc_mu_;
  std::deque<std::vector<Word>> blocks_;  // one block per alloc; stable
  std::deque<Signal> signals_;            // stable addresses, ids in word space
  std::unordered_map<const std::atomic<bool>*, std::uint64_t> signal_ids_;
  std::size_t next_id_ = 0;
  std::size_t total_words_ = 0;
  std::vector<pal::CachePadded<OpCounters>> counters_;
};

}  // namespace aml::model
