// Umbrella header for the amlock library: a reproduction of
//
//   Alon & Morrison, "Deterministic Abortable Mutual Exclusion with
//   Sublogarithmic Adaptive RMR Complexity", PODC 2018.
//
// Public surface:
//   * aml::AbortableLock / aml::AbortSignal  — production lock (native).
//   * aml::core::OneShotLock                 — Section 3 one-shot lock.
//   * aml::core::OneShotLockDsm              — Section 3 DSM variant.
//   * aml::core::Tree                        — Section 4 ordered set.
//   * aml::core::LongLivedLock               — Section 6 transformation.
//   * aml::model::*                          — memory models: native and
//     RMR-counting CC/DSM simulators implementing the paper's cost model.
//   * aml::sched::StepScheduler              — deterministic executions.
//   * aml::baselines::*                      — Table 1 comparison locks.
//   * aml::obs::Metrics / aml::obs::NullMetrics — observability sinks
//     (counters, event ring, hand-off histogram); zero-cost when disabled.
//   * aml::table::NamedLockTable             — sharded named-lock service:
//     keys -> stripes of long-lived abortable locks, RAII thread-id leasing,
//     deadline-based acquisition, ordered multi-key transactions.
#pragma once

#include "aml/pal/bits.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"
#include "aml/model/concepts.hpp"
#include "aml/model/native.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/model/counting_dsm.hpp"
#include "aml/sched/scheduler.hpp"
#include "aml/obs/events.hpp"
#include "aml/obs/histogram.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/core/tree.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/core/versioned_space.hpp"
#include "aml/core/eager_space.hpp"
#include "aml/core/spin_pool.hpp"
#include "aml/core/longlived.hpp"
#include "aml/core/abortable_lock.hpp"
#include "aml/core/adapters.hpp"
#include "aml/table/hash.hpp"
#include "aml/table/thread_registry.hpp"
#include "aml/table/lock_table.hpp"
#include "aml/table/named_table.hpp"
