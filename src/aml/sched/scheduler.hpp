// Deterministic step scheduler for simulated executions.
//
// The counting memory models gate every shared-memory operation through a
// ScheduleHook. StepScheduler implements that hook so that exactly one
// process executes one shared-memory operation at a time, with the
// interleaving chosen by a pluggable, seedable policy. This gives:
//
//   * determinism — a (seed, policy, workload) triple replays the identical
//     execution, so every test failure is reproducible;
//   * adversarial control — policies can starve processes, interleave a
//     Remove() mid-flight with a FindNext() (the paper's "crossed paths"
//     scenario), or hammer a single victim;
//   * busy-wait soundness — a process spinning on a cached word takes no
//     schedulable step until the word is mutated or its abort signal is
//     raised, so schedule exploration terminates (this mirrors the CC cost
//     model: a cached re-read is invisible to shared memory).
//
// Liveness violations (no runnable process while some are blocked) and step
// budget exhaustion indicate algorithm bugs; the scheduler writes a
// replayable trace file (the full choice sequence — see aml/analysis/trace),
// dumps state, and aborts the process so that ctest reports a hard failure
// that can be reproduced exactly with policies::replay or tools/aml_replay.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aml/analysis/trace.hpp"
#include "aml/pal/config.hpp"
#include "aml/pal/rng.hpp"
#include "aml/model/types.hpp"

namespace aml::sched {

using model::Pid;

/// Everything a scheduling policy may look at when picking the next process.
struct PickContext {
  const std::vector<Pid>& runnable;            ///< sorted ascending
  std::uint64_t step;                          ///< global step count
  pal::Xoshiro256& rng;                        ///< seeded stream
  const std::vector<std::uint64_t>& steps_of;  ///< per-process steps taken
  /// Footprint of each process' *next* step (indexed by pid), as announced
  /// through ScheduleHook::on_footprint. Entries are only meaningful for
  /// currently-runnable processes; partial-order reduction uses them to
  /// decide which runnable steps commute.
  const std::vector<model::Footprint>& pending;
};

/// A policy returns one element of ctx.runnable.
using Policy = std::function<Pid(const PickContext&)>;

namespace policies {

/// Uniformly random among runnable processes (the default).
inline Policy random() {
  return [](const PickContext& ctx) {
    return ctx.runnable[ctx.rng.below(ctx.runnable.size())];
  };
}

/// Cycle fairly through process ids.
inline Policy round_robin() {
  auto next = std::make_shared<Pid>(0);
  return [next](const PickContext& ctx) {
    for (std::size_t i = 0; i < ctx.runnable.size(); ++i) {
      for (Pid cand : ctx.runnable) {
        if (cand >= *next) {
          *next = cand + 1;
          return cand;
        }
      }
      *next = 0;  // wrap
    }
    *next = ctx.runnable.front() + 1;
    return ctx.runnable.front();
  };
}

/// Always run the highest-priority runnable process. `priority[0]` is the
/// most preferred. Processes not listed are least preferred (by id).
inline Policy prefer(std::vector<Pid> priority) {
  return [priority = std::move(priority)](const PickContext& ctx) {
    for (Pid want : priority) {
      for (Pid cand : ctx.runnable) {
        if (cand == want) return cand;
      }
    }
    return ctx.runnable.front();
  };
}

/// Scripted prefix: run `pid` for exactly `steps` grants, then the next
/// segment; when the script is exhausted, fall back to `fallback`. A segment
/// whose process is not runnable is a scripting error (hard abort), because
/// scenario tests rely on exact control.
struct Segment {
  Pid pid;
  std::uint64_t steps;
};

inline Policy script(std::vector<Segment> segments, Policy fallback) {
  struct State {
    std::vector<Segment> segs;
    std::size_t idx = 0;
    std::uint64_t used = 0;
  };
  auto st = std::make_shared<State>();
  st->segs = std::move(segments);
  return [st, fallback = std::move(fallback)](const PickContext& ctx) {
    while (st->idx < st->segs.size() &&
           st->used >= st->segs[st->idx].steps) {
      st->idx++;
      st->used = 0;
    }
    if (st->idx >= st->segs.size()) return fallback(ctx);
    const Pid want = st->segs[st->idx].pid;
    for (Pid cand : ctx.runnable) {
      if (cand == want) {
        st->used++;
        return cand;
      }
    }
    AML_ASSERT(false, "scripted process not runnable at its segment");
    return ctx.runnable.front();
  };
}

/// Replay an exact grant sequence (e.g. a Result::trace recorded with
/// record_trace from a failing run), then fall back. Each replayed pid must
/// be runnable at its turn — guaranteed when replaying a trace of the same
/// deterministic workload.
inline Policy replay(std::vector<Pid> trace, Policy fallback) {
  auto pos = std::make_shared<std::size_t>(0);
  return [trace = std::move(trace), pos,
          fallback = std::move(fallback)](const PickContext& ctx) {
    if (*pos >= trace.size()) return fallback(ctx);
    const Pid want = trace[(*pos)++];
    for (Pid cand : ctx.runnable) {
      if (cand == want) return cand;
    }
    AML_ASSERT(false, "replayed process not runnable (divergent workload?)");
    return ctx.runnable.front();
  };
}

}  // namespace policies

/// Scheduler configuration (namespace scope so it can serve as a default
/// argument — GCC rejects in-class default args that need a nested class'
/// default member initializers).
struct SchedulerConfig {
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 5'000'000;
  Policy policy{};  ///< empty => policies::random() is substituted at start
  bool record_trace = false;
  /// Label stamped into emitted trace files (workload name); "sched" if
  /// empty. Lets a fatal trace say which workload reproduces it.
  std::string trace_label{};
  /// Directory for fatal trace files; empty => $AMLOCK_TRACE_DIR, else ".".
  std::string trace_dir{};
};

class StepScheduler final : public model::ScheduleHook {
 public:
  using Config = SchedulerConfig;

  struct Result {
    std::uint64_t steps = 0;
    std::vector<Pid> trace;  ///< grant sequence if record_trace
    /// Per-grant footprints (parallel to `trace`) if record_trace.
    std::vector<model::Footprint> footprints;
    /// First invariant-probe violation ("" = none) and the step it fired at.
    /// The execution continues to completion after a violation (probes are
    /// read-only), so callers get the full choice sequence for replay.
    std::string violation;
    std::uint64_t violation_step = 0;
  };

  explicit StepScheduler(Pid nprocs, Config config = Config())
      : nprocs_(nprocs),
        config_(std::move(config)),
        rng_(config_.seed),
        procs_(nprocs) {
    if (!config_.policy) config_.policy = policies::random();
    steps_of_.assign(nprocs, 0);
    pending_.assign(nprocs, model::Footprint{});
  }

  /// Invoked before every grant with the global step number. Used by tests
  /// to raise abort signals at exact points in the execution.
  void set_step_callback(std::function<void(std::uint64_t)> cb) {
    step_callback_ = std::move(cb);
  }

  /// Invoked when no process is runnable but not all are done (e.g. everyone
  /// parked waiting). May raise abort signals to unblock; return true if it
  /// changed anything. If it returns false the scheduler declares deadlock.
  void set_idle_callback(std::function<bool()> cb) {
    idle_callback_ = std::move(cb);
  }

  /// Register an invariant probe: a read-only predicate over the workload's
  /// state (typically an aml::analysis oracle bound to the world under test)
  /// evaluated at *every* decision point and once after the last process
  /// finishes. Safe because probes run on the scheduler thread while every
  /// worker is parked. Return "" when the invariant holds, a description of
  /// the violation otherwise. The first violation is recorded in
  /// Result::violation (with the step number) and the execution continues,
  /// so the caller still gets a complete, replayable choice sequence.
  void add_invariant_probe(std::function<std::string()> probe) {
    probes_.push_back(std::move(probe));
  }

  /// Run `body(p)` for p = 0..nprocs-1 to completion under this scheduler.
  /// The memory model(s) used by `body` must have this scheduler installed
  /// as their hook before calling run().
  Result run(const std::function<void(Pid)>& body) {
    std::vector<std::thread> threads;
    threads.reserve(nprocs_);
    for (Pid p = 0; p < nprocs_; ++p) {
      threads.emplace_back([this, &body, p] {
        body(p);
        finish(p);
      });
    }
    drive();
    for (auto& t : threads) t.join();
    Result result;
    result.steps = step_;
    if (config_.record_trace) {
      result.trace = std::move(choices_);
      result.footprints = std::move(footprints_);
    }
    result.violation = std::move(violation_);
    result.violation_step = violation_step_;
    return result;
  }

  // --- ScheduleHook ----------------------------------------------------

  void on_footprint(Pid p, const model::Footprint& f) override {
    // Called by the worker thread immediately before its on_step()/on_block()
    // park. No lock needed: the write is ordered before the scheduler's read
    // by the mutex acquire in the park that follows, and the scheduler only
    // reads footprints of parked (settled) processes.
    procs_[p].footprint = f;
  }

  void on_step(Pid p) override {
    std::unique_lock<std::mutex> lk(mu_);
    Proc& proc = procs_[p];
    proc.state = State::kAtGate;
    cv_sched_.notify_one();
    // The grant itself moves us to kRunning (scheduler-side), so the
    // scheduler never observes a granted process as still runnable.
    proc.cv.wait(lk, [&] { return proc.granted; });
    proc.granted = false;
  }

  void on_block(Pid p, const std::atomic<std::uint64_t>* version,
                std::uint64_t seen_version, const std::atomic<bool>* stop,
                const std::atomic<std::uint64_t>* version2 = nullptr,
                std::uint64_t seen2 = 0) override {
    std::unique_lock<std::mutex> lk(mu_);
    Proc& proc = procs_[p];
    proc.state = State::kBlocked;
    proc.version = version;
    proc.seen_version = seen_version;
    proc.version2 = version2;
    proc.seen2 = seen2;
    proc.stop = stop;
    cv_sched_.notify_one();
    proc.cv.wait(lk, [&] { return proc.granted; });
    proc.granted = false;
  }

 private:
  enum class State : std::uint8_t {
    kNotStarted,
    kRunning,
    kAtGate,
    kBlocked,
    kDone,
  };

  struct Proc {
    State state = State::kNotStarted;
    bool granted = false;
    const std::atomic<std::uint64_t>* version = nullptr;
    std::uint64_t seen_version = 0;
    const std::atomic<std::uint64_t>* version2 = nullptr;
    std::uint64_t seen2 = 0;
    const std::atomic<bool>* stop = nullptr;
    model::Footprint footprint;  ///< footprint of the next gated step
    std::condition_variable cv;
  };

  void finish(Pid p) {
    std::lock_guard<std::mutex> lk(mu_);
    procs_[p].state = State::kDone;
    cv_sched_.notify_one();
  }

  static bool blocked_runnable(const Proc& proc) {
    if (proc.version->load(std::memory_order_acquire) != proc.seen_version) {
      return true;
    }
    if (proc.version2 != nullptr &&
        proc.version2->load(std::memory_order_acquire) != proc.seen2) {
      return true;
    }
    return proc.stop != nullptr &&
           proc.stop->load(std::memory_order_acquire);
  }

  bool settled() const {
    for (const Proc& proc : procs_) {
      if (proc.state == State::kNotStarted || proc.state == State::kRunning) {
        return false;
      }
    }
    return true;
  }

  void drive() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      // Wait until every process is parked at a gate, blocked, or done, so
      // grant decisions never race with an in-flight operation.
      cv_sched_.wait(lk, [&] { return settled(); });

      std::vector<Pid> runnable;
      bool all_done = true;
      for (Pid p = 0; p < nprocs_; ++p) {
        const Proc& proc = procs_[p];
        if (proc.state != State::kDone) all_done = false;
        if (proc.state == State::kAtGate ||
            (proc.state == State::kBlocked && blocked_runnable(proc))) {
          runnable.push_back(p);
        }
        pending_[p] = proc.footprint;
      }
      run_probes();
      if (all_done) return;

      if (runnable.empty()) {
        // Everyone is parked on unchanged words: give the harness a chance
        // to inject abort signals; otherwise this is a liveness violation.
        if (idle_callback_ && idle_callback_()) continue;
        dump_and_abort("deadlock: no runnable process");
      }

      if (step_callback_) step_callback_(step_);

      const PickContext ctx{runnable, step_, rng_, steps_of_, pending_};
      const Pid pick = config_.policy(ctx);
      AML_ASSERT(std::find(runnable.begin(), runnable.end(), pick) !=
                     runnable.end(),
                 "policy picked a non-runnable process");
      ++step_;
      ++steps_of_[pick];
      // The choice sequence is always recorded (it is what makes a fatal
      // execution replayable); per-step footprints only when requested.
      choices_.push_back(pick);
      if (config_.record_trace) footprints_.push_back(pending_[pick]);
      if (step_ > config_.max_steps) {
        dump_and_abort("step budget exhausted (livelock?)");
      }
      Proc& proc = procs_[pick];
      proc.state = State::kRunning;  // not runnable again until it re-posts
      proc.granted = true;
      proc.cv.notify_one();
    }
  }

  /// Evaluate the invariant probes at a quiescent point. Only the first
  /// violation is kept; probing stops afterwards (the state is already
  /// corrupt, follow-on reports would just be noise).
  void run_probes() {
    if (probes_.empty() || !violation_.empty()) return;
    for (const auto& probe : probes_) {
      std::string msg = probe();
      if (!msg.empty()) {
        violation_ = std::move(msg);
        violation_step_ = step_;
        return;
      }
    }
  }

  /// Persist the choice sequence executed so far as a replayable trace file
  /// (aml/analysis/trace format). Returns the path, or "" on I/O failure.
  std::string write_fatal_trace(const char* why) {
    analysis::TraceFile trace;
    trace.workload =
        config_.trace_label.empty() ? "sched" : config_.trace_label;
    trace.nprocs = nprocs_;
    trace.seed = config_.seed;
    trace.reason = why;
    trace.choices = choices_;
    trace.footprints = footprints_;  // empty unless record_trace
    std::string dir = config_.trace_dir;
    if (dir.empty()) {
      const char* env = std::getenv("AMLOCK_TRACE_DIR");
      dir = (env != nullptr && env[0] != '\0') ? env : ".";
    }
    const std::string path = dir + "/" + trace.workload + "-seed" +
                             std::to_string(config_.seed) + "-fatal.trace";
    return analysis::write_trace(path, trace) ? path : std::string{};
  }

  [[noreturn]] void dump_and_abort(const char* why) {
    std::fprintf(stderr, "StepScheduler fatal: %s at step %llu (seed %llu)\n",
                 why, static_cast<unsigned long long>(step_),
                 static_cast<unsigned long long>(config_.seed));
    for (Pid p = 0; p < nprocs_; ++p) {
      std::fprintf(stderr, "  p%u state=%d steps=%llu\n", p,
                   static_cast<int>(procs_[p].state),
                   static_cast<unsigned long long>(steps_of_[p]));
    }
    const std::string path = write_fatal_trace(why);
    if (!path.empty()) {
      std::fprintf(stderr,
                   "  replayable trace (%zu choices) written to %s\n"
                   "  reproduce with tools/aml_replay --replay %s (or feed the"
                   " choice sequence to sched::policies::replay)\n",
                   choices_.size(), path.c_str(), path.c_str());
    } else {
      // No filesystem? Still print the tail so the log alone narrows it down.
      const std::size_t n = choices_.size();
      const std::size_t from = n > 64 ? n - 64 : 0;
      std::fprintf(stderr, "  trace write failed; last %zu choices:",
                   n - from);
      for (std::size_t i = from; i < n; ++i) {
        std::fprintf(stderr, " %u", choices_[i]);
      }
      std::fprintf(stderr, "\n");
    }
    std::abort();
  }

  Pid nprocs_;
  Config config_;
  pal::Xoshiro256 rng_;
  std::mutex mu_;
  std::condition_variable cv_sched_;
  std::deque<Proc> procs_;
  std::uint64_t step_ = 0;
  std::vector<std::uint64_t> steps_of_;
  std::vector<Pid> choices_;  ///< full grant sequence (always recorded)
  std::vector<model::Footprint> footprints_;  ///< per-grant, if record_trace
  std::vector<model::Footprint> pending_;     ///< per-pid next-step footprint
  std::string violation_;
  std::uint64_t violation_step_ = 0;
  std::vector<std::function<std::string()>> probes_;
  std::function<void(std::uint64_t)> step_callback_;
  std::function<bool()> idle_callback_;
};

}  // namespace aml::sched
