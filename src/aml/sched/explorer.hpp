// Bounded-exhaustive schedule exploration (stateless model checking).
//
// An execution under StepScheduler is fully determined by the sequence of
// scheduling choices, so the space of executions of a deterministic workload
// is a tree: each node is a decision point (the sorted runnable set), each
// edge a chosen process. Explorer enumerates that tree by *replay*: every
// execution reconstructs the world from scratch and follows a planned prefix
// of choices, then a default policy; the decisions actually taken (and the
// alternatives available) are recorded, and depth-first backtracking yields
// the next plan.
//
// Full enumeration explodes, so two orthogonal reductions are provided:
//
//  * Iterative context bounding (Musuvathi & Qadeer): continuing the
//    previously-running process is always free; *preempting* it (scheduling
//    someone else while it is still runnable) consumes budget. Empirically
//    almost all concurrency bugs need very few preemptions; with budget c
//    the number of executions is polynomial, O((steps * nprocs)^c).
//    Switching away from a process that is blocked or done is free (it is
//    not a preemption), and all alternatives at such forced switches are
//    explored.
//
//  * Dynamic partial-order reduction with sleep sets (Flanagan & Godefroid
//    2005; Godefroid 1996), Reduction::kDpor. The counting models announce
//    each step's (address, read|mutate) footprint, so the explorer builds
//    the happens-before relation of the executed path with vector clocks
//    and plants backtrack points only where two *dependent* steps of
//    different processes race; commuting interleavings are never
//    enumerated twice. Sleep sets additionally prune sibling branches whose
//    first steps are independent of everything explored since.
//
// The two compose: DPOR picks *where* to branch, the preemption bound caps
// *how many* chargeable branches a single execution may take. Composition
// with a finite preemption bound is heuristically incomplete (a backtrack
// point can exceed the budget and be dropped — see "bounded partial-order
// reduction" literature); raise the bound (the nightly CI job does) for
// stronger guarantees.
//
// Abort signals must be modelled as gated Signals (model::alloc_signal /
// raise_signal) for DPOR workloads: a plain std::atomic<bool> store has no
// footprint, so reduction could not see the race between an abort delivery
// and the wait it interrupts and would soundly-looking — but wrongly —
// collapse those interleavings.
//
// Failure handling: a workload marks an execution failed via
// ExecutionContext::fail() (or implicitly when a scheduler invariant probe
// fires). The explorer records the first failure, writes a replayable trace
// file (aml/analysis/trace), and — with stop_on_failure — stops. A recorded
// trace can be re-executed exactly with ExploreConfig::replay_choices or
// tools/aml_replay.
//
// Usage:
//   ExploreConfig cfg{.nprocs = 3, .preemption_bound = 2};
//   cfg.reduction = Reduction::kDpor;
//   ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
//     // Build a fresh world; install ctx.scheduler() hook; define bodies.
//     ...
//   });
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "aml/analysis/trace.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/config.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::sched {

/// Which state-space reduction the explorer applies on top of the
/// preemption bound.
enum class Reduction : std::uint8_t {
  kNone,  ///< enumerate every budget-respecting interleaving
  kDpor,  ///< dynamic partial-order reduction + sleep sets
};

struct ExploreConfig {
  Pid nprocs = 2;
  /// Maximum preemptive context switches per execution.
  std::uint32_t preemption_bound = 2;
  /// Hard cap on enumerated executions (stats report truncation).
  std::uint64_t max_executions = 250'000;
  std::uint64_t max_steps_per_exec = 100'000;
  Reduction reduction = Reduction::kNone;
  /// Stop at the first failing execution (after writing its trace).
  bool stop_on_failure = true;
  /// Workload label stamped into emitted trace files ("workload" if empty).
  std::string workload;
  /// Directory for failure traces; empty => $AMLOCK_TRACE_DIR, else ".".
  std::string trace_dir;
  /// Non-empty => replay exactly this choice sequence as a single execution
  /// (e.g. TraceFile::choices loaded from a failure trace) instead of
  /// exploring. The workload must be the one that produced the trace.
  std::vector<Pid> replay_choices;
};

struct ExploreStats {
  std::uint64_t executions = 0;
  std::uint64_t decisions_explored = 0;  ///< total decision points visited
  std::uint64_t max_depth = 0;           ///< longest execution (steps)
  bool truncated = false;                ///< hit max_executions
  // --- failure reporting ---
  bool failed = false;                 ///< some execution reported a failure
  std::uint64_t failing_execution = 0; ///< 1-based index of the first one
  std::string failure;                 ///< its description
  std::string trace_path;              ///< replayable trace file ("" if none)
  // --- reduction accounting (kDpor) ---
  std::uint64_t races_seen = 0;   ///< dependent concurrent pairs found
  std::uint64_t sleep_skips = 0;  ///< branches pruned by sleep sets
};

namespace detail {

/// One decision point of the last execution: what was runnable, what we
/// picked, and whether alternatives are chargeable preemptions.
struct Decision {
  std::vector<Pid> runnable;  ///< sorted
  std::uint32_t picked = 0;   ///< index into runnable
  bool prev_runnable = false; ///< the previously-scheduled process could
                              ///< have continued (so switching = preemption)
  Pid prev = model::kNoPid;
  std::uint32_t preemptions_used = 0;  ///< budget consumed BEFORE this pick
};

/// Sleep set: processes whose next step (the recorded footprint) commutes
/// with everything explored since they were put to sleep, making any branch
/// that starts with them redundant.
using SleepSet = std::map<Pid, model::Footprint>;

/// One decision point on the DPOR search stack. Persistent across the
/// replayed executions that share its prefix.
struct DporNode {
  std::vector<Pid> runnable;              ///< sorted
  std::vector<model::Footprint> pending;  ///< per-pid next-step footprints
  Pid chosen = model::kNoPid;             ///< branch currently explored
  std::vector<Pid> backtrack;             ///< branches to explore (set)
  std::vector<Pid> done;                  ///< branches explored/abandoned
  SleepSet sleep;                         ///< sleep set at entry + exhausted
                                          ///< siblings
  Pid prev = model::kNoPid;
  bool prev_runnable = false;
  std::uint32_t preemptions_used = 0;  ///< budget consumed BEFORE this node
};

/// One executed step, as recorded by the DPOR policy.
struct DporStep {
  std::vector<Pid> runnable;
  std::vector<model::Footprint> pending;  ///< per-pid, at this decision
  SleepSet sleep;                         ///< sleep set at this decision
  Pid picked = model::kNoPid;
  Pid prev = model::kNoPid;
  bool prev_runnable = false;
  std::uint32_t preemptions_used = 0;
};

inline bool contains(const std::vector<Pid>& v, Pid p) {
  for (Pid x : v) {
    if (x == p) return true;
  }
  return false;
}

}  // namespace detail

/// Handed to the world factory so it can construct the scheduler-driven run.
/// The factory must: build a fresh world, call run(body), and check
/// invariants afterwards — via fail() (preferred: lets the explorer stop and
/// write a replayable trace) and/or gtest EXPECTs. Scheduler invariant-probe
/// violations (aml::analysis oracles) are picked up automatically.
class ExecutionContext {
 public:
  ExecutionContext(Pid nprocs, SchedulerConfig config)
      : scheduler_(nprocs, std::move(config)) {}

  StepScheduler& scheduler() { return scheduler_; }

  StepScheduler::Result run(const std::function<void(Pid)>& body) {
    result_ = scheduler_.run(body);
    if (!result_.violation.empty() && failure_.empty()) {
      failure_ = result_.violation + " (at step " +
                 std::to_string(result_.violation_step) + ")";
    }
    return result_;
  }

  /// Record this execution as failed (first call wins). The explorer writes
  /// a replayable trace and, with stop_on_failure, stops exploring.
  void fail(std::string why) {
    if (failure_.empty()) failure_ = std::move(why);
  }
  bool failed() const { return !failure_.empty(); }
  const std::string& failure() const { return failure_; }

  /// Result of the (last) run, including the recorded choice sequence.
  const StepScheduler::Result& result() const { return result_; }

 private:
  StepScheduler scheduler_;
  StepScheduler::Result result_;
  std::string failure_;
};

namespace detail {

/// Shared failure bookkeeping: fold one execution's outcome into the stats
/// and persist the first failure's trace file. Returns true if exploration
/// should stop.
inline bool note_execution(const ExploreConfig& config, ExploreStats& stats,
                           const ExecutionContext& ctx) {
  if (!ctx.failed()) return false;
  if (!stats.failed) {
    stats.failed = true;
    stats.failing_execution = stats.executions;
    stats.failure = ctx.failure();
    analysis::TraceFile trace;
    trace.workload = config.workload.empty() ? "workload" : config.workload;
    trace.nprocs = config.nprocs;
    trace.seed = 1;
    trace.reason = ctx.failure();
    trace.choices = ctx.result().trace;
    trace.footprints = ctx.result().footprints;
    std::string dir = config.trace_dir;
    if (dir.empty()) {
      const char* env = std::getenv("AMLOCK_TRACE_DIR");
      dir = (env != nullptr && env[0] != '\0') ? env : ".";
    }
    const std::string path =
        dir + "/" + trace.workload + "-exec" +
        std::to_string(stats.failing_execution) + ".trace";
    if (analysis::write_trace(path, trace)) stats.trace_path = path;
  }
  return config.stop_on_failure;
}

inline SchedulerConfig exec_scheduler_config(const ExploreConfig& config,
                                             Policy policy) {
  SchedulerConfig scfg;
  scfg.policy = std::move(policy);
  scfg.max_steps = config.max_steps_per_exec;
  scfg.record_trace = true;  // failures must be replayable
  scfg.trace_label = config.workload.empty() ? "workload" : config.workload;
  scfg.trace_dir = config.trace_dir;
  return scfg;
}

/// Replay mode: run the recorded choice sequence once.
inline ExploreStats explore_replay(
    const ExploreConfig& config,
    const std::function<void(ExecutionContext&)>& factory) {
  ExploreStats stats;
  Policy policy = policies::replay(config.replay_choices, [](const PickContext& ctx) {
    // Past the recorded suffix (e.g. the trace was cut at the failure
    // point): finish deterministically.
    return ctx.runnable.front();
  });
  ExecutionContext ctx(config.nprocs,
                       exec_scheduler_config(config, std::move(policy)));
  factory(ctx);
  stats.executions = 1;
  stats.decisions_explored = ctx.result().trace.size();
  stats.max_depth = ctx.result().trace.size();
  note_execution(config, stats, ctx);
  return stats;
}

/// The original bounded-exhaustive enumeration (Reduction::kNone). Kept
/// byte-for-byte in exploration order so existing exact-count tests pin its
/// semantics; failure plumbing only reads the outcome.
inline ExploreStats explore_unreduced(
    const ExploreConfig& config,
    const std::function<void(ExecutionContext&)>& factory) {
  ExploreStats stats;
  // The plan: for decision k < plan.size(), pick runnable[plan[k]].
  std::vector<std::uint32_t> plan;

  for (;;) {
    if (stats.executions >= config.max_executions) {
      stats.truncated = true;
      break;
    }
    // --- one execution -------------------------------------------------
    auto trace = std::make_shared<std::vector<detail::Decision>>();
    auto prev = std::make_shared<Pid>(model::kNoPid);
    auto preemptions = std::make_shared<std::uint32_t>(0);
    const std::vector<std::uint32_t> current_plan = plan;

    Policy policy = [trace, prev, preemptions,
                     current_plan](const PickContext& ctx) {
      detail::Decision decision;
      decision.runnable = ctx.runnable;  // sorted by scheduler
      decision.prev = *prev;
      decision.preemptions_used = *preemptions;
      bool prev_runnable = false;
      std::uint32_t prev_idx = 0;
      for (std::uint32_t i = 0; i < ctx.runnable.size(); ++i) {
        if (ctx.runnable[i] == *prev) {
          prev_runnable = true;
          prev_idx = i;
        }
      }
      decision.prev_runnable = prev_runnable;
      const std::size_t k = trace->size();
      std::uint32_t pick_idx;
      if (k < current_plan.size()) {
        pick_idx = current_plan[k];
        AML_ASSERT(pick_idx < ctx.runnable.size(),
                   "explorer replay diverged: plan index out of range");
      } else {
        // Default: continue the previous process if possible (free),
        // otherwise the lowest-id runnable.
        pick_idx = prev_runnable ? prev_idx : 0;
      }
      const Pid picked = ctx.runnable[pick_idx];
      if (prev_runnable && picked != *prev) ++(*preemptions);
      decision.picked = pick_idx;
      trace->push_back(decision);
      *prev = picked;
      return picked;
    };

    ExecutionContext ctx(config.nprocs,
                         exec_scheduler_config(config, std::move(policy)));
    factory(ctx);

    stats.executions++;
    stats.decisions_explored += trace->size();
    if (trace->size() > stats.max_depth) stats.max_depth = trace->size();
    if (detail::note_execution(config, stats, ctx)) break;

    // --- backtrack: find the deepest decision with an unexplored,
    // budget-respecting alternative --------------------------------------
    //
    // At each decision the canonical exploration order is: the default pick
    // first (continue prev, else lowest id), then the remaining indices
    // ascending. The first execution through a prefix always takes the
    // canonical first choice there, so "the next alternative after
    // d.picked" is well-defined in canonical order regardless of the
    // default's raw index.
    bool advanced = false;
    for (std::size_t k = trace->size(); k-- > 0;) {
      const detail::Decision& d = (*trace)[k];
      std::uint32_t default_idx = 0;
      if (d.prev_runnable) {
        for (std::uint32_t i = 0; i < d.runnable.size(); ++i) {
          if (d.runnable[i] == d.prev) default_idx = i;
        }
      }
      std::vector<std::uint32_t> canon;
      canon.push_back(default_idx);
      for (std::uint32_t i = 0; i < d.runnable.size(); ++i) {
        if (i != default_idx) canon.push_back(i);
      }
      std::size_t pos = 0;
      while (pos < canon.size() && canon[pos] != d.picked) ++pos;
      AML_ASSERT(pos < canon.size(), "picked index missing from canon order");
      for (std::size_t next = pos + 1; next < canon.size(); ++next) {
        const std::uint32_t candidate = canon[next];
        std::uint32_t cost = d.preemptions_used;
        const Pid cand_pid = d.runnable[candidate];
        if (d.prev_runnable && cand_pid != d.prev) cost++;
        if (cost > config.preemption_bound) continue;
        plan.clear();
        for (std::size_t j = 0; j < k; ++j) {
          plan.push_back((*trace)[j].picked);
        }
        plan.push_back(candidate);
        advanced = true;
        break;
      }
      if (advanced) break;
    }
    if (!advanced) break;  // tree exhausted
  }
  return stats;
}

/// Dynamic partial-order reduction (Reduction::kDpor).
///
/// Persistent DFS over decision nodes. Each execution replays the stack's
/// chosen prefix, then extends with the default pick (continue prev, else
/// lowest non-sleeping). Afterwards the executed path is analyzed with
/// vector clocks: every pair of dependent steps by different processes that
/// are not already ordered by happens-before is a race, and the racing
/// process is planted in the backtrack set of the earlier step's node.
/// Exhausted branches move into their node's sleep set and prune sibling
/// subtrees that start independently.
inline ExploreStats explore_dpor(
    const ExploreConfig& config,
    const std::function<void(ExecutionContext&)>& factory) {
  ExploreStats stats;
  std::vector<detail::DporNode> nodes;  // DFS stack (shared prefix)
  std::vector<Pid> plan;                // chosen pid per stack node

  for (;;) {
    if (stats.executions >= config.max_executions) {
      stats.truncated = true;
      break;
    }
    // --- one execution: replay `plan`, extend by default ----------------
    auto steps = std::make_shared<std::vector<detail::DporStep>>();
    auto prev = std::make_shared<Pid>(model::kNoPid);
    auto preemptions = std::make_shared<std::uint32_t>(0);
    auto cur_sleep = std::make_shared<detail::SleepSet>();
    const std::vector<Pid> current_plan = plan;
    const std::vector<detail::DporNode>* stack = &nodes;

    Policy policy = [steps, prev, preemptions, cur_sleep, current_plan,
                     stack](const PickContext& ctx) {
      const std::size_t k = steps->size();
      detail::DporStep step;
      step.runnable = ctx.runnable;
      step.pending = ctx.pending;
      step.prev = *prev;
      step.preemptions_used = *preemptions;
      step.prev_runnable = detail::contains(ctx.runnable, *prev);

      Pid picked = model::kNoPid;
      if (k < current_plan.size()) {
        // Replaying the stack prefix: the node's sleep set is authoritative
        // (it accumulates exhausted siblings the forward pass cannot see).
        step.sleep = (*stack)[k].sleep;
        picked = current_plan[k];
        AML_ASSERT(detail::contains(ctx.runnable, picked),
                   "DPOR replay diverged: planned process not runnable");
      } else {
        // Fresh extension: default pick among non-sleeping processes.
        step.sleep = *cur_sleep;
        if (step.prev_runnable && step.sleep.find(*prev) == step.sleep.end()) {
          picked = *prev;
        } else {
          for (Pid cand : ctx.runnable) {
            if (step.sleep.find(cand) == step.sleep.end()) {
              picked = cand;
              break;
            }
          }
          // Every runnable process asleep should be unreachable (a sleeping
          // process only re-wakes via a dependent step, which would have
          // removed it); fall back defensively rather than abort.
          if (picked == model::kNoPid) picked = ctx.runnable.front();
        }
      }
      if (step.prev_runnable && picked != *prev) ++(*preemptions);
      step.picked = picked;

      // Child sleep set: keep entries whose footprint commutes with the
      // picked step; the picked process itself always leaves the set.
      const model::Footprint& fp = ctx.pending[picked];
      detail::SleepSet next_sleep;
      for (const auto& [pid, f] : step.sleep) {
        if (pid != picked && !model::footprints_dependent(f, fp)) {
          next_sleep.emplace(pid, f);
        }
      }
      *cur_sleep = std::move(next_sleep);
      steps->push_back(std::move(step));
      *prev = picked;
      return picked;
    };

    ExecutionContext ctx(config.nprocs,
                         exec_scheduler_config(config, std::move(policy)));
    factory(ctx);

    stats.executions++;
    stats.decisions_explored += steps->size();
    if (steps->size() > stats.max_depth) stats.max_depth = steps->size();

    // --- materialize fresh nodes for the extension ----------------------
    AML_ASSERT(nodes.size() == current_plan.size(),
               "DPOR stack out of sync with plan");
    AML_ASSERT(steps->size() >= current_plan.size(),
               "execution shorter than its planned prefix");
    for (std::size_t k = nodes.size(); k < steps->size(); ++k) {
      const detail::DporStep& s = (*steps)[k];
      detail::DporNode node;
      node.runnable = s.runnable;
      node.pending = s.pending;
      node.chosen = s.picked;
      node.backtrack.push_back(s.picked);
      node.done.push_back(s.picked);
      node.sleep = s.sleep;
      node.prev = s.prev;
      node.prev_runnable = s.prev_runnable;
      node.preemptions_used = s.preemptions_used;
      nodes.push_back(std::move(node));
    }

    if (detail::note_execution(config, stats, ctx)) break;

    // --- race analysis: vector clocks over the executed path ------------
    //
    // kidx[i] = 1-based index of step i within its process; clock_of[p] =
    // p's current clock. Scanning candidates for step j in descending order
    // while merging their clocks ensures a step already ordered before j
    // through an intermediate dependent step is not misreported as a race.
    const std::size_t n = steps->size();
    std::vector<std::uint32_t> kidx(n, 0);
    {
      std::vector<std::uint32_t> count(config.nprocs, 0);
      for (std::size_t i = 0; i < n; ++i) {
        kidx[i] = ++count[(*steps)[i].picked];
      }
    }
    std::vector<std::vector<std::uint32_t>> step_clock(
        n, std::vector<std::uint32_t>(config.nprocs, 0));
    std::vector<std::vector<std::uint32_t>> clock_of(
        config.nprocs, std::vector<std::uint32_t>(config.nprocs, 0));
    for (std::size_t j = 0; j < n; ++j) {
      const Pid q = (*steps)[j].picked;
      const model::Footprint& fj = (*steps)[j].pending[q];
      std::vector<std::uint32_t> cv = clock_of[q];
      for (std::size_t i = j; i-- > 0;) {
        const Pid p = (*steps)[i].picked;
        if (p == q) continue;
        const model::Footprint& fi = (*steps)[i].pending[p];
        if (!model::footprints_dependent(fi, fj)) continue;
        if (kidx[i] <= cv[p]) continue;  // already happens-before j
        // Race: steps i and j are dependent and concurrent. Plant a
        // backtrack point at the pre-state of i.
        stats.races_seen++;
        detail::DporNode& node = nodes[i];
        const auto plant = [&](Pid cand) {
          if (detail::contains(node.backtrack, cand)) return;
          if (node.sleep.find(cand) != node.sleep.end()) return;
          node.backtrack.push_back(cand);
        };
        if (detail::contains(node.runnable, q)) {
          plant(q);
        } else {
          for (Pid cand : node.runnable) plant(cand);
        }
        for (std::size_t p2 = 0; p2 < cv.size(); ++p2) {
          cv[p2] = std::max(cv[p2], step_clock[i][p2]);
        }
      }
      cv[q] = kidx[j];
      step_clock[j] = cv;
      clock_of[q] = std::move(cv);
    }

    // --- DFS: pick the deepest node with an admissible branch ------------
    bool advanced = false;
    while (!nodes.empty()) {
      detail::DporNode& node = nodes.back();
      // Returning to this node: its explored branch is exhausted and goes
      // to sleep for the remaining siblings.
      if (node.chosen != model::kNoPid) {
        node.sleep.emplace(node.chosen, node.pending[node.chosen]);
        node.chosen = model::kNoPid;
      }
      Pid next = model::kNoPid;
      for (std::size_t idx = 0; idx < node.backtrack.size(); ++idx) {
        const Pid cand = node.backtrack[idx];
        if (detail::contains(node.done, cand)) continue;
        if (node.sleep.find(cand) != node.sleep.end()) {
          stats.sleep_skips++;
          node.done.push_back(cand);
          continue;
        }
        std::uint32_t cost = node.preemptions_used;
        if (node.prev_runnable && cand != node.prev) cost++;
        if (cost > config.preemption_bound) {
          // Over budget: abandon (this is the bounded-DPOR incompleteness).
          node.done.push_back(cand);
          continue;
        }
        next = cand;
        break;
      }
      if (next != model::kNoPid) {
        node.done.push_back(next);
        node.chosen = next;
        plan.assign(nodes.size(), 0);
        for (std::size_t k = 0; k < nodes.size(); ++k) {
          plan[k] = nodes[k].chosen;
        }
        advanced = true;
        break;
      }
      nodes.pop_back();
    }
    if (!advanced) break;  // tree exhausted
    plan.resize(nodes.size());
  }
  return stats;
}

}  // namespace detail

/// Enumerate executions of the workload built by `factory`. The factory is
/// invoked once per execution with a fresh ExecutionContext whose scheduler
/// policy is the explorer's replay policy; it must build a fresh world
/// (model + locks), install the hook, call ctx.run(...), and verify
/// invariants — via ExecutionContext::fail() and/or gtest EXPECTs.
inline ExploreStats explore(
    const ExploreConfig& config,
    const std::function<void(ExecutionContext&)>& factory) {
  if (!config.replay_choices.empty()) {
    return detail::explore_replay(config, factory);
  }
  switch (config.reduction) {
    case Reduction::kDpor:
      return detail::explore_dpor(config, factory);
    case Reduction::kNone:
      break;
  }
  return detail::explore_unreduced(config, factory);
}

}  // namespace aml::sched
