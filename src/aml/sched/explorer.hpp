// Bounded-exhaustive schedule exploration (stateless model checking).
//
// An execution under StepScheduler is fully determined by the sequence of
// scheduling choices, so the space of executions of a deterministic workload
// is a tree: each node is a decision point (the sorted runnable set), each
// edge a chosen process. Explorer enumerates that tree by *replay*: every
// execution reconstructs the world from scratch and follows a planned prefix
// of choices, then a default policy; the decisions actually taken (and the
// alternatives available) are recorded, and depth-first backtracking yields
// the next plan.
//
// Full enumeration explodes, so we implement iterative context bounding
// (Musuvathi & Qadeer): continuing the previously-running process is always
// free; *preempting* it (scheduling someone else while it is still runnable)
// consumes budget. Empirically almost all concurrency bugs need very few
// preemptions; with budget c the number of executions is polynomial,
// O((steps * nprocs)^c). Switching away from a process that is blocked or
// done is free (it is not a preemption), and all alternatives at such forced
// switches are explored.
//
// Abort signals are modelled as ghost processes that take one schedulable
// step and then raise the signal, so the explorer also enumerates *when*
// each abort lands relative to every shared-memory operation.
//
// Usage:
//   ExploreConfig cfg{.nprocs = 3, .preemption_bound = 2};
//   ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
//     // Build a fresh world; install ctx.scheduler() hook; define bodies.
//     ...
//   });
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aml/model/types.hpp"
#include "aml/pal/config.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::sched {

struct ExploreConfig {
  Pid nprocs = 2;
  /// Maximum preemptive context switches per execution.
  std::uint32_t preemption_bound = 2;
  /// Hard cap on enumerated executions (stats report truncation).
  std::uint64_t max_executions = 250'000;
  std::uint64_t max_steps_per_exec = 100'000;
};

struct ExploreStats {
  std::uint64_t executions = 0;
  std::uint64_t decisions_explored = 0;  ///< total decision points visited
  std::uint64_t max_depth = 0;           ///< longest execution (steps)
  bool truncated = false;                ///< hit max_executions
};

namespace detail {

/// One decision point of the last execution: what was runnable, what we
/// picked, and whether alternatives are chargeable preemptions.
struct Decision {
  std::vector<Pid> runnable;  ///< sorted
  std::uint32_t picked = 0;   ///< index into runnable
  bool prev_runnable = false; ///< the previously-scheduled process could
                              ///< have continued (so switching = preemption)
  Pid prev = model::kNoPid;
  std::uint32_t preemptions_used = 0;  ///< budget consumed BEFORE this pick
};

}  // namespace detail

/// Handed to the world factory so it can construct the scheduler-driven run.
/// The factory must: build a fresh world, call run(body), and (optionally)
/// check invariants afterwards — throwing or recording failures itself.
class ExecutionContext {
 public:
  ExecutionContext(Pid nprocs, SchedulerConfig config)
      : scheduler_(nprocs, std::move(config)) {}

  StepScheduler& scheduler() { return scheduler_; }

  StepScheduler::Result run(const std::function<void(Pid)>& body) {
    return scheduler_.run(body);
  }

 private:
  StepScheduler scheduler_;
};

/// Enumerate executions of the workload built by `factory`. The factory is
/// invoked once per execution with a fresh ExecutionContext whose scheduler
/// policy is the explorer's replay policy; it must build a fresh world
/// (model + locks), install the hook, call ctx.run(...), and verify
/// invariants (e.g. with gtest EXPECTs).
inline ExploreStats explore(
    const ExploreConfig& config,
    const std::function<void(ExecutionContext&)>& factory) {
  ExploreStats stats;
  // The plan: for decision k < plan.size(), pick runnable[plan[k]].
  std::vector<std::uint32_t> plan;

  for (;;) {
    if (stats.executions >= config.max_executions) {
      stats.truncated = true;
      break;
    }
    // --- one execution -------------------------------------------------
    auto trace = std::make_shared<std::vector<detail::Decision>>();
    auto prev = std::make_shared<Pid>(model::kNoPid);
    auto preemptions = std::make_shared<std::uint32_t>(0);
    const std::vector<std::uint32_t> current_plan = plan;

    Policy policy = [trace, prev, preemptions,
                     current_plan](const PickContext& ctx) {
      detail::Decision decision;
      decision.runnable = ctx.runnable;  // sorted by scheduler
      decision.prev = *prev;
      decision.preemptions_used = *preemptions;
      bool prev_runnable = false;
      std::uint32_t prev_idx = 0;
      for (std::uint32_t i = 0; i < ctx.runnable.size(); ++i) {
        if (ctx.runnable[i] == *prev) {
          prev_runnable = true;
          prev_idx = i;
        }
      }
      decision.prev_runnable = prev_runnable;
      const std::size_t k = trace->size();
      std::uint32_t pick_idx;
      if (k < current_plan.size()) {
        pick_idx = current_plan[k];
        AML_ASSERT(pick_idx < ctx.runnable.size(),
                   "explorer replay diverged: plan index out of range");
      } else {
        // Default: continue the previous process if possible (free),
        // otherwise the lowest-id runnable.
        pick_idx = prev_runnable ? prev_idx : 0;
      }
      const Pid picked = ctx.runnable[pick_idx];
      if (prev_runnable && picked != *prev) ++(*preemptions);
      decision.picked = pick_idx;
      trace->push_back(decision);
      *prev = picked;
      return picked;
    };

    SchedulerConfig scfg;
    scfg.policy = std::move(policy);
    scfg.max_steps = config.max_steps_per_exec;
    ExecutionContext ctx(config.nprocs, std::move(scfg));
    factory(ctx);

    stats.executions++;
    stats.decisions_explored += trace->size();
    if (trace->size() > stats.max_depth) stats.max_depth = trace->size();

    // --- backtrack: find the deepest decision with an unexplored,
    // budget-respecting alternative --------------------------------------
    //
    // At each decision the canonical exploration order is: the default pick
    // first (continue prev, else lowest id), then the remaining indices
    // ascending. The first execution through a prefix always takes the
    // canonical first choice there, so "the next alternative after
    // d.picked" is well-defined in canonical order regardless of the
    // default's raw index.
    bool advanced = false;
    for (std::size_t k = trace->size(); k-- > 0;) {
      const detail::Decision& d = (*trace)[k];
      std::uint32_t default_idx = 0;
      if (d.prev_runnable) {
        for (std::uint32_t i = 0; i < d.runnable.size(); ++i) {
          if (d.runnable[i] == d.prev) default_idx = i;
        }
      }
      std::vector<std::uint32_t> canon;
      canon.push_back(default_idx);
      for (std::uint32_t i = 0; i < d.runnable.size(); ++i) {
        if (i != default_idx) canon.push_back(i);
      }
      std::size_t pos = 0;
      while (pos < canon.size() && canon[pos] != d.picked) ++pos;
      AML_ASSERT(pos < canon.size(), "picked index missing from canon order");
      for (std::size_t next = pos + 1; next < canon.size(); ++next) {
        const std::uint32_t candidate = canon[next];
        std::uint32_t cost = d.preemptions_used;
        const Pid cand_pid = d.runnable[candidate];
        if (d.prev_runnable && cand_pid != d.prev) cost++;
        if (cost > config.preemption_bound) continue;
        plan.clear();
        for (std::size_t j = 0; j < k; ++j) {
          plan.push_back((*trace)[j].picked);
        }
        plan.push_back(candidate);
        advanced = true;
        break;
      }
      if (advanced) break;
    }
    if (!advanced) break;  // tree exhausted
  }
  return stats;
}

}  // namespace aml::sched
