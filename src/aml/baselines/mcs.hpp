// MCS queue lock (Mellor-Crummey & Scott, 1991): the O(1)-RMR non-abortable
// yardstick the paper's introduction and conclusion compare against. Uses
// SWAP and CAS.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

using model::Pid;

template <typename M>
class McsLock {
 public:
  using Word = typename M::Word;

  explicit McsLock(M& mem, Pid nprocs) : mem_(mem) {
    tail_ = mem_.alloc(1, kNull);
    next_.reserve(nprocs);
    locked_.reserve(nprocs);
    for (Pid p = 0; p < nprocs; ++p) {
      next_.push_back(mem_.alloc(1, kNull));
      locked_.push_back(mem_.alloc(1, 0));
    }
  }

  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  /// Not abortable: the stop flag is accepted for interface compatibility
  /// and ignored. Always returns true.
  bool enter(Pid self, const std::atomic<bool>* /*stop*/) {
    mem_.write(self, *next_[self], kNull);
    mem_.write(self, *locked_[self], 1);
    const std::uint64_t pred = mem_.swap(self, *tail_, self);
    if (pred != kNull) {
      mem_.write(self, *next_[static_cast<Pid>(pred)], self);
      mem_.wait(
          self, *locked_[self], [](std::uint64_t v) { return v == 0; },
          nullptr);
    }
    return true;
  }

  void exit(Pid self) {
    std::uint64_t succ = mem_.read(self, *next_[self]);
    if (succ == kNull) {
      if (mem_.cas(self, *tail_, self, kNull)) return;  // no successor
      // A successor is mid-enqueue; wait for its next-pointer write.
      auto outcome = mem_.wait(
          self, *next_[self], [](std::uint64_t v) { return v != kNull; },
          nullptr);
      succ = outcome.value;
    }
    mem_.write(self, *locked_[static_cast<Pid>(succ)], 0);
  }

 private:
  static constexpr std::uint64_t kNull = ~std::uint64_t{0};

  M& mem_;
  Word* tail_ = nullptr;
  std::vector<Word*> next_;    ///< per-process queue node: successor id
  std::vector<Word*> locked_;  ///< per-process queue node: spin flag
};

}  // namespace aml::baselines
