// Lee-style abortable F&A queue lock (Lee, OPODIS 2010 class): the Table 1
// row with F&A+SWAP whose adaptive RMR cost grows *polynomially* with the
// number of aborts (O(A_i * A_t) in Lee's bounded-space algorithm; our
// rendition's hand-off scan is O(run of abandoned slots), giving the same
// "not sublogarithmic in A" signature the paper contrasts against — see
// DESIGN.md's substitution table).
//
// Like the paper's one-shot lock, a process obtains a slot with F&A(Tail)
// and spins on go[slot]; unlike it, there is no Tree: an aborter poisons its
// slot with CAS and the releaser linearly scans forward past poisoned slots.
// The CAS claim protocol makes abort/hand-off races lossless:
//   - aborter:  CAS(go[i], kWaiting -> kPoisoned); failure means the lock
//     was handed to us concurrently, so we pass it on (scan) and still
//     return aborted;
//   - releaser: CAS(go[j], kWaiting -> kGranted); failure means slot j
//     poisoned itself, skip it. Scanning past Tail pre-grants the next
//     future slot, leaving the lock available.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class LeeStyleAbortableLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  /// `max_attempts` bounds total enter() calls (slot array size).
  LeeStyleAbortableLock(M& mem, Pid /*nprocs*/, std::uint64_t max_attempts)
      : mem_(mem) {
    go_.reserve(max_attempts + 1);
    for (std::uint64_t i = 0; i <= max_attempts; ++i) {
      go_.push_back(mem_.alloc(1, i == 0 ? kGranted : kWaiting));
    }
    tail_ = mem_.alloc(1, 0);
    slot_of_.resize(1, 0);
    slot_local_.assign(kMaxProcs, 0);
  }

  LeeStyleAbortableLock(const LeeStyleAbortableLock&) = delete;
  LeeStyleAbortableLock& operator=(const LeeStyleAbortableLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* stop) {
    const std::uint64_t i = mem_.faa(self, *tail_, 1);
    AML_ASSERT(i < go_.size(), "Lee lock attempt budget exceeded");
    auto outcome = mem_.wait(
        self, *go_[i], [](std::uint64_t v) { return v != kWaiting; }, stop);
    if (!outcome.stopped) {
      AML_DASSERT(outcome.value == kGranted, "poisoned while waiting?");
      slot_local_[self] = i;
      return true;
    }
    // Abort: try to poison our slot before the hand-off reaches it.
    if (mem_.cas(self, *go_[i], kWaiting, kPoisoned)) {
      return false;
    }
    // Lost the race: we were granted the lock concurrently. Pass it on.
    signal_from(self, i);
    return false;
  }

  void exit(Pid self) { signal_from(self, slot_local_[self]); }

 private:
  static constexpr std::uint64_t kWaiting = 0;
  static constexpr std::uint64_t kGranted = 1;
  static constexpr std::uint64_t kPoisoned = 2;
  static constexpr Pid kMaxProcs = 1 << 16;

  /// Hand the lock to the first non-poisoned slot after `from`. This linear
  /// scan over poisoned slots is the Lee-row cost signature.
  void signal_from(Pid self, std::uint64_t from) {
    std::uint64_t j = from + 1;
    for (;;) {
      AML_ASSERT(j < go_.size(), "Lee lock scan past slot budget");
      if (mem_.cas(self, *go_[j], kWaiting, kGranted)) return;
      const std::uint64_t v = mem_.read(self, *go_[j]);
      AML_DASSERT(v == kPoisoned || v == kGranted, "unexpected slot state");
      if (v != kPoisoned) return;  // already granted (shouldn't re-grant)
      ++j;
    }
  }

  M& mem_;
  Word* tail_ = nullptr;
  std::vector<Word*> go_;
  std::vector<std::uint64_t> slot_of_;
  std::vector<std::uint64_t> slot_local_;  ///< process-local
};

}  // namespace aml::baselines
