// Scott-style abortable queue lock (Scott, PODC 2002: "Non-blocking timeout
// in scalable queue-based spin locks"), in its CLH formulation: the Table 1
// row with SWAP+CAS, FCFS, unbounded space, O(1) no-abort RMRs and RMR cost
// growing with the number of aborts during the execution.
//
// Each acquisition allocates a fresh queue node (status word + predecessor
// link) from a pool sized by the expected number of attempts — Table 1's
// "unbounded space". A waiter spins on its predecessor's status:
//   kLocked    — predecessor still active: keep waiting;
//   kReleased  — lock handed to us;
//   kAbandoned — predecessor aborted: adopt *its* predecessor and keep
//                spinning there (this chain walk is what makes the RMR cost
//                O(#aborts)).
// Aborting = publishing kAbandoned on our own node; the successor (if any)
// walks past us. No hand-off is lost: the successor re-examines the chain
// it adopts, and a released node stays released.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class ScottAbortableLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  /// `max_attempts` bounds the total number of enter() calls across all
  /// processes (the pool stands in for the paper row's unbounded heap).
  ScottAbortableLock(M& mem, Pid nprocs, std::uint64_t max_attempts)
      : mem_(mem) {
    (void)nprocs;
    const std::uint64_t nodes = max_attempts + 1;
    status_.reserve(nodes);
    prev_.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      // Node 0 is the initial dummy, already released.
      status_.push_back(mem_.alloc(1, i == 0 ? kReleased : kLocked));
      prev_.push_back(mem_.alloc(1, 0));
    }
    tail_ = mem_.alloc(1, 0);
    next_node_ = mem_.alloc(1, 1);  // node allocator (F&A)
    owner_node_.resize(nprocs, 0);
  }

  ScottAbortableLock(const ScottAbortableLock&) = delete;
  ScottAbortableLock& operator=(const ScottAbortableLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* stop) {
    const std::uint64_t my = mem_.faa(self, *next_node_, 1);
    AML_ASSERT(my < status_.size(), "Scott lock attempt budget exceeded");
    const std::uint64_t pred = mem_.swap(self, *tail_, my);
    mem_.write(self, *prev_[my], pred);
    std::uint64_t spin_on = pred;
    for (;;) {
      auto outcome = mem_.wait(
          self, *status_[spin_on],
          [](std::uint64_t v) { return v != kLocked; }, stop);
      if (outcome.stopped) {
        // Abandon: successors will walk past us to our predecessor chain.
        mem_.write(self, *status_[my], kAbandoned);
        return false;
      }
      if (outcome.value == kReleased) {
        owner_node_[self] = my;
        return true;
      }
      AML_DASSERT(outcome.value == kAbandoned, "unknown node status");
      spin_on = mem_.read(self, *prev_[spin_on]);  // adopt pred's pred
    }
  }

  void exit(Pid self) {
    mem_.write(self, *status_[owner_node_[self]], kReleased);
  }

 private:
  static constexpr std::uint64_t kLocked = 0;
  static constexpr std::uint64_t kReleased = 1;
  static constexpr std::uint64_t kAbandoned = 2;

  M& mem_;
  Word* tail_ = nullptr;
  Word* next_node_ = nullptr;
  std::vector<Word*> status_;
  std::vector<Word*> prev_;
  std::vector<std::uint64_t> owner_node_;  ///< process-local
};

}  // namespace aml::baselines
