// Test-and-set and test-and-test-and-set locks: the centralized baselines.
// Trivially abortable (abandoning an attempt needs no cleanup), but with
// unbounded worst-case RMR cost under contention — the other end of the
// design space from the paper's lock.
#pragma once

#include <atomic>
#include <cstdint>

#include "aml/model/concepts.hpp"

namespace aml::baselines {

template <typename M>
class TasLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  explicit TasLock(M& mem, Pid /*nprocs*/) : mem_(mem) {
    word_ = mem_.alloc(1, 0);
  }

  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* stop) {
    for (;;) {
      if (mem_.cas(self, *word_, 0, 1)) return true;
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return false;
      }
      // Re-arm: wait until the lock looks free (or we are aborted).
      auto outcome = mem_.wait(
          self, *word_, [](std::uint64_t v) { return v == 0; }, stop);
      if (outcome.stopped) return false;
    }
  }

  void exit(Pid self) { mem_.write(self, *word_, 0); }

 private:
  M& mem_;
  Word* word_ = nullptr;
};

/// TTAS: identical shape, but the spin is read-only until the word looks
/// free (which TasLock above also does between CAS attempts); kept as a
/// distinct name for bench readability.
template <typename M>
using TtasLock = TasLock<M>;

}  // namespace aml::baselines
