// Ticket lock: F&A-based, FCFS, non-abortable. Every release invalidates
// every waiter's cached copy of `serving`, so a passage under contention
// costs O(k) RMRs in the CC model — a useful contrast to queue locks in the
// RMR benches.
#pragma once

#include <atomic>
#include <cstdint>

#include "aml/model/concepts.hpp"

namespace aml::baselines {

template <typename M>
class TicketLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  explicit TicketLock(M& mem, Pid /*nprocs*/) : mem_(mem) {
    next_ = mem_.alloc(1, 0);
    serving_ = mem_.alloc(1, 0);
  }

  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* /*stop*/) {
    const std::uint64_t ticket = mem_.faa(self, *next_, 1);
    mem_.wait(
        self, *serving_,
        [ticket](std::uint64_t v) { return v == ticket; }, nullptr);
    return true;
  }

  void exit(Pid self) {
    const std::uint64_t cur = mem_.read(self, *serving_);
    mem_.write(self, *serving_, cur + 1);
  }

 private:
  M& mem_;
  Word* next_ = nullptr;
  Word* serving_ = nullptr;
};

}  // namespace aml::baselines
