// Jayanti & Jayanti-style abortable queue lock with constant *amortized* RMR
// (arxiv 1809.04561): the Table 1 row that beats the source paper's
// worst-case-adaptive O(log_W A) bound on steady workloads, at the price of a
// worst case that degrades to O(concurrent aborts) for a single passage.
//
// Rendition (see DESIGN.md's substitution table): a CLH-formulation queue on
// SWAP+CAS. Each process owns one spare node; a node carries a `status` word
// and a `prev` word. enter() publishes the node kWaiting, SWAPs it into
// `tail`, and chain-walks from its predecessor:
//
//   - kReleased  — the lock token. Consume it (the dead node becomes our new
//     spare) and hold the lock through our own node.
//   - kAbandoned — the position's owner aborted. Read `prev` FIRST, then
//     claim with CAS(status, kAbandoned -> kRecycled); on success splice to
//     `prev`, on failure the owner revived in place — keep waiting on it.
//   - abort      — write own status kAbandoned (one RMR; the release token is
//     level-triggered, so no hand-off can be lost) and remember the node as
//     pending.
//
// A pending node is *revived* on the next enter() with CAS(status,
// kAbandoned -> kWaiting): success resumes the old queue position (prev is
// kept pointing at the current chain target by the walk), failure means our
// unique successor already recycled the node, so it is free to re-enqueue.
//
// Amortization: every claim-CAS consumes one abandonment epoch, and each
// epoch is paid for by the O(1) abort that created it, so total RMRs are
// O(#attempts): O(1) amortized per passage, with N+1 nodes total. All shared
// state lives in model words (gated ops), so the lock composes with the DPOR
// explorer, the invariant oracles, and amlint R4.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class JayantiAbortableLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  /// Long-lived: space is N+1 nodes regardless of the number of attempts.
  JayantiAbortableLock(M& mem, Pid nprocs) : mem_(mem) {
    const std::uint64_t nodes = static_cast<std::uint64_t>(nprocs) + 1;
    status_.reserve(nodes);
    prev_.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      // Node 0 is the initial token (the lock starts free); the others are
      // the processes' spares.
      status_.push_back(mem_.alloc(1, i == 0 ? kReleased : kRecycled));
      prev_.push_back(mem_.alloc(1, 0));
    }
    tail_ = mem_.alloc(1, 0);
    node_.resize(nprocs);
    owner_.assign(nprocs, 0);
    pending_.assign(nprocs, 0);
    for (Pid p = 0; p < nprocs; ++p) {
      node_[p] = static_cast<std::uint64_t>(p) + 1;
    }
  }

  JayantiAbortableLock(const JayantiAbortableLock&) = delete;
  JayantiAbortableLock& operator=(const JayantiAbortableLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* stop) {
    AML_ASSERT(static_cast<std::size_t>(self) < node_.size(),
               "pid out of range");
    const std::uint64_t m = node_[self];
    if (pending_[self] != 0) {
      pending_[self] = 0;
      if (mem_.cas(self, *status_[m], kAbandoned, kWaiting)) {
        // Revived in place: prev still names our chain target (the walk
        // below keeps it current), so we resume the old queue position.
        return walk(self, m, mem_.read(self, *prev_[m]), stop);
      }
      // Our successor recycled the node between the abort and now; it is
      // free again, fall through to a fresh enqueue.
    }
    mem_.write(self, *status_[m], kWaiting);
    const std::uint64_t pred = mem_.swap(self, *tail_, m);
    mem_.write(self, *prev_[m], pred);
    return walk(self, m, pred, stop);
  }

  void exit(Pid self) {
    mem_.write(self, *status_[owner_[self]], kReleased);
  }

  /// Nodes whose abandonment epoch was consumed by a successor (diagnostic).
  std::uint64_t debug_node_count() const { return status_.size(); }

 private:
  static constexpr std::uint64_t kWaiting = 0;
  static constexpr std::uint64_t kReleased = 1;
  static constexpr std::uint64_t kAbandoned = 2;
  static constexpr std::uint64_t kRecycled = 3;

  /// Chain-walk from `cur` until we consume the release token or abort.
  bool walk(Pid self, std::uint64_t m, std::uint64_t cur,
            const std::atomic<bool>* stop) {
    for (;;) {
      auto outcome = mem_.wait(
          self, *status_[cur], [](std::uint64_t v) { return v != kWaiting; },
          stop);
      if (outcome.stopped) {
        // O(1) abort. The token is level-triggered (a kReleased predecessor
        // stays kReleased), so abandoning cannot lose a hand-off: whoever
        // claims our node continues the walk from `prev` = cur.
        mem_.write(self, *status_[m], kAbandoned);
        pending_[self] = 1;
        return false;
      }
      if (outcome.value == kReleased) {
        // Consumed the token: `cur` is dead to every other process (we were
        // its unique successor position) and becomes our next spare.
        node_[self] = cur;
        owner_[self] = m;
        return true;
      }
      AML_DASSERT(outcome.value == kAbandoned, "walk saw recycled node");
      // Read prev BEFORE the claim: after a failed revival the owner
      // re-enqueues the node with a new prev, and adopting that value would
      // put two walkers on one position.
      const std::uint64_t next = mem_.read(self, *prev_[cur]);
      if (mem_.cas(self, *status_[cur], kAbandoned, kRecycled)) {
        // Keep our own prev naming the live chain target so a successor
        // that claims *us* (or our own revival) resumes from the right
        // node, not from a spliced-out one.
        mem_.write(self, *prev_[m], next);
        cur = next;
      }
      // CAS failure: the owner revived the position in place; keep waiting
      // on it.
    }
  }

  M& mem_;
  Word* tail_ = nullptr;
  std::vector<Word*> status_;
  std::vector<Word*> prev_;
  std::vector<std::uint64_t> node_;     ///< process-local: spare node
  std::vector<std::uint64_t> owner_;    ///< process-local: node of current hold
  std::vector<std::uint8_t> pending_;   ///< process-local: abort to revive
};

}  // namespace aml::baselines
