// Jayanti & Jayanti-style abortable queue lock with constant *amortized* RMR
// (arxiv 1809.04561): the Table 1 row that beats the source paper's
// worst-case-adaptive O(log_W A) bound on steady workloads, at the price of a
// worst case that degrades to O(concurrent aborts) for a single passage.
//
// Rendition (see DESIGN.md's substitution table): a CLH-formulation queue on
// SWAP+CAS. Each process owns one spare node; a node carries a `status` word
// and a `prev` word. The status word packs a 2-bit state into its low bits
// and an *abandonment epoch* into the bits above (see "Epoch versioning"
// below). enter() publishes the node kWaiting, SWAPs it into `tail`, and
// chain-walks from its predecessor:
//
//   - kReleased  — the lock token. Consume it (the dead node becomes our new
//     spare) and hold the lock through our own node.
//   - kAbandoned — the position's owner aborted. Read `prev` FIRST, then
//     claim with CAS(status, observed word -> kRecycled at the same epoch);
//     on success splice to `prev`, on failure the owner revived in place or
//     abandoned anew — re-observe and retry.
//   - abort      — bump the node's epoch and write own status kAbandoned
//     (one RMR; the release token is level-triggered, so no hand-off can be
//     lost) and remember the node as pending.
//
// A pending node is *revived* on the next enter() with CAS(status,
// kAbandoned at the pending epoch -> kWaiting at that epoch): success
// resumes the old queue position (prev is kept pointing at the current chain
// target by the walk), failure means our unique successor already recycled
// the node, so it is free to re-enqueue.
//
// == Epoch versioning (why the claim-CAS compares the full word) ==
//
// A state-only claim-CAS is ABA-prone: a walker reads prev of an abandoned
// node, the node's owner revives it, splices its own prev past a recycled
// predecessor, and aborts *again* — and the stale CAS(kAbandoned ->
// kRecycled) would now consume the second abandonment while splicing to the
// prev of the first, putting two walkers on one position (reachable with 4
// processes and two aborts at adjacent queue positions). So every
// abandonment gets a fresh epoch: the abort increments the node's epoch
// before writing kAbandoned, all other transitions (revive, re-enqueue,
// release, recycle) carry the epoch through unchanged, and both the claim
// CAS and the revival CAS compare the full packed word. A claim can then
// only consume the specific abandonment whose prev the walker read —
// (kAbandoned, e) occurs at most once per node — and a CAS that lost to a
// revive-and-re-abort fails, re-observes, and adopts the *current* prev.
// Epochs are tracked process-locally (a node's status is written only by its
// current owner while kWaiting, and ownership transfers hand the epoch over
// through the observed kReleased word), so the versioning costs no extra
// shared-memory operations.
//
// Amortization: every claim-CAS consumes one abandonment epoch, and each
// epoch is paid for by the O(1) abort that created it, so total RMRs are
// O(#attempts): O(1) amortized per passage, with N+1 nodes total. All shared
// state lives in model words (gated ops), so the lock composes with the DPOR
// explorer, the invariant oracles, and amlint R4.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class JayantiAbortableLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  /// Long-lived: space is N+1 nodes regardless of the number of attempts.
  JayantiAbortableLock(M& mem, Pid nprocs) : mem_(mem) {
    const std::uint64_t nodes = static_cast<std::uint64_t>(nprocs) + 1;
    status_.reserve(nodes);
    prev_.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      // Node 0 is the initial token (the lock starts free); the others are
      // the processes' spares. All nodes start at epoch 0.
      status_.push_back(
          mem_.alloc(1, pack(i == 0 ? kReleased : kRecycled, 0)));
      prev_.push_back(mem_.alloc(1, 0));
    }
    tail_ = mem_.alloc(1, 0);
    node_.resize(nprocs);
    node_epoch_.assign(nprocs, 0);
    owner_.assign(nprocs, 0);
    owner_epoch_.assign(nprocs, 0);
    pending_.assign(nprocs, 0);
    for (Pid p = 0; p < nprocs; ++p) {
      node_[p] = static_cast<std::uint64_t>(p) + 1;
    }
  }

  JayantiAbortableLock(const JayantiAbortableLock&) = delete;
  JayantiAbortableLock& operator=(const JayantiAbortableLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* stop) {
    AML_ASSERT(static_cast<std::size_t>(self) < node_.size(),
               "pid out of range");
    const std::uint64_t m = node_[self];
    const std::uint64_t e = node_epoch_[self];
    if (pending_[self] != 0) {
      pending_[self] = 0;
      if (mem_.cas(self, *status_[m], pack(kAbandoned, e), pack(kWaiting, e))) {
        // Revived in place: prev still names our chain target (the walk
        // below keeps it current), so we resume the old queue position.
        return walk(self, m, mem_.read(self, *prev_[m]), stop);
      }
      // Our successor recycled that abandonment epoch between the abort and
      // now; the node is free again, fall through to a fresh enqueue.
    }
    mem_.write(self, *status_[m], pack(kWaiting, e));
    const std::uint64_t pred = mem_.swap(self, *tail_, m);
    mem_.write(self, *prev_[m], pred);
    return walk(self, m, pred, stop);
  }

  void exit(Pid self) {
    mem_.write(self, *status_[owner_[self]],
               pack(kReleased, owner_epoch_[self]));
  }

  /// Nodes whose abandonment epoch was consumed by a successor (diagnostic).
  std::uint64_t debug_node_count() const { return status_.size(); }

 private:
  static constexpr std::uint64_t kWaiting = 0;
  static constexpr std::uint64_t kReleased = 1;
  static constexpr std::uint64_t kAbandoned = 2;
  static constexpr std::uint64_t kRecycled = 3;
  static constexpr std::uint64_t kStateBits = 2;
  static constexpr std::uint64_t kStateMask = (std::uint64_t{1} << kStateBits) - 1;

  static constexpr std::uint64_t pack(std::uint64_t state,
                                      std::uint64_t epoch) {
    return (epoch << kStateBits) | state;
  }
  static constexpr std::uint64_t state_of(std::uint64_t w) {
    return w & kStateMask;
  }
  static constexpr std::uint64_t epoch_of(std::uint64_t w) {
    return w >> kStateBits;
  }

  /// Chain-walk from `cur` until we consume the release token or abort.
  bool walk(Pid self, std::uint64_t m, std::uint64_t cur,
            const std::atomic<bool>* stop) {
    for (;;) {
      auto outcome = mem_.wait(
          self, *status_[cur],
          [](std::uint64_t v) { return state_of(v) != kWaiting; }, stop);
      if (outcome.stopped) {
        // O(1) abort. The token is level-triggered (a kReleased predecessor
        // stays kReleased), so abandoning cannot lose a hand-off: whoever
        // claims our node continues the walk from `prev` = cur. The epoch
        // bump makes this abandonment claimable exactly once (see "Epoch
        // versioning" in the header comment).
        node_epoch_[self] += 1;
        mem_.write(self, *status_[m], pack(kAbandoned, node_epoch_[self]));
        pending_[self] = 1;
        return false;
      }
      if (state_of(outcome.value) == kReleased) {
        // Consumed the token: `cur` is dead to every other process (we were
        // its unique successor position) and becomes our next spare,
        // inheriting its epoch from the released word.
        node_[self] = cur;
        owner_[self] = m;
        owner_epoch_[self] = node_epoch_[self];
        node_epoch_[self] = epoch_of(outcome.value);
        return true;
      }
      AML_DASSERT(state_of(outcome.value) == kAbandoned,
                  "walk saw recycled node");
      // Read prev BEFORE the claim: the full-word CAS below then certifies
      // that the abandonment we observed is still current, so the prev we
      // read belongs to it. A stale claim (the owner revived, spliced, and
      // re-abandoned at a higher epoch) fails and we re-observe.
      const std::uint64_t next = mem_.read(self, *prev_[cur]);
      if (mem_.cas(self, *status_[cur], outcome.value,
                   pack(kRecycled, epoch_of(outcome.value)))) {
        // Keep our own prev naming the live chain target so a successor
        // that claims *us* (or our own revival) resumes from the right
        // node, not from a spliced-out one.
        mem_.write(self, *prev_[m], next);
        cur = next;
      }
      // CAS failure: the owner revived the position in place (wait again)
      // or abandoned it anew (re-observe and claim the fresh epoch).
    }
  }

  M& mem_;
  Word* tail_ = nullptr;
  std::vector<Word*> status_;
  std::vector<Word*> prev_;
  std::vector<std::uint64_t> node_;        ///< process-local: spare node
  std::vector<std::uint64_t> node_epoch_;  ///< epoch of the spare's word
  std::vector<std::uint64_t> owner_;    ///< process-local: node of current hold
  std::vector<std::uint64_t> owner_epoch_;  ///< epoch of the held node
  std::vector<std::uint8_t> pending_;   ///< process-local: abort to revive
};

}  // namespace aml::baselines
