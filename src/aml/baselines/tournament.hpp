// Abortable tournament lock: a binary tree of 2-process abortable locks.
//
// This is the O(log N)-RMR abortable baseline class of Table 1 (Jayanti's
// adaptive lock [17] and Lee's thesis construction [20] both live here; see
// DESIGN.md's substitution table — we reproduce the worst-case O(log N)
// RMR shape, which is what Table 1 compares, not Jayanti's point-contention
// adaptivity).
//
// Each tree node packs a Peterson-style 2-process lock into ONE word
// (bit0 = flag of side 0, bit1 = flag of side 1, bit2 = turn), updated with
// CAS so the state changes atomically and waiting is a single-word spin
// (which both the CC cost model and the deterministic scheduler handle
// precisely). A process aborts by clearing its flag at the node it is
// waiting at and releasing the node locks it already holds.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/bits.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class TournamentAbortableLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  explicit TournamentAbortableLock(M& mem, Pid nprocs)
      : mem_(mem), levels_(pal::ceil_log(nprocs, 2)) {
    nodes_.resize(levels_ + 1);
    for (std::uint32_t lvl = 1; lvl <= levels_; ++lvl) {
      const std::uint64_t width =
          pal::pow_sat(2, levels_ - lvl);
      nodes_[lvl].reserve(width);
      for (std::uint64_t i = 0; i < width; ++i) {
        nodes_[lvl].push_back(mem_.alloc(1, 0));
      }
    }
  }

  TournamentAbortableLock(const TournamentAbortableLock&) = delete;
  TournamentAbortableLock& operator=(const TournamentAbortableLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* stop) {
    for (std::uint32_t lvl = 1; lvl <= levels_; ++lvl) {
      const std::uint32_t side = (self >> (lvl - 1)) & 1;
      Word& node = *nodes_[lvl][self >> lvl];
      if (!acquire_node(self, node, side, stop)) {
        // Aborted at this level: release everything below and bail.
        release_below(self, lvl);
        return false;
      }
    }
    return true;
  }

  void exit(Pid self) { release_below(self, levels_ + 1); }

 private:
  static constexpr std::uint64_t kTurnBit = 1u << 2;

  static std::uint64_t flag_bit(std::uint32_t side) {
    return std::uint64_t{1} << side;
  }

  /// Peterson acquire on the packed word; returns false iff aborted.
  bool acquire_node(Pid self, Word& node, std::uint32_t side,
                    const std::atomic<bool>* stop) {
    // Atomically set my flag and give way (turn = me).
    for (;;) {
      const std::uint64_t v = mem_.read(self, node);
      std::uint64_t nv = v | flag_bit(side);
      nv = (nv & ~kTurnBit) |
           (side != 0 ? kTurnBit : 0);  // turn encodes who waits
      if (mem_.cas(self, node, v, nv)) break;
    }
    const std::uint64_t other = flag_bit(1 - side);
    auto outcome = mem_.wait(
        self, node,
        [other, side](std::uint64_t v) {
          const std::uint32_t turn = (v & kTurnBit) != 0 ? 1u : 0u;
          return (v & other) == 0 || turn != side;
        },
        stop);
    if (!outcome.stopped) return true;
    clear_flag(self, node, side);
    return false;
  }

  void clear_flag(Pid self, Word& node, std::uint32_t side) {
    for (;;) {
      const std::uint64_t v = mem_.read(self, node);
      if (mem_.cas(self, node, v, v & ~flag_bit(side))) return;
    }
  }

  /// Release node locks at levels [1, upto).
  void release_below(Pid self, std::uint32_t upto) {
    for (std::uint32_t lvl = upto; lvl-- > 1;) {
      const std::uint32_t side = (self >> (lvl - 1)) & 1;
      clear_flag(self, *nodes_[lvl][self >> lvl], side);
    }
  }

  M& mem_;
  std::uint32_t levels_;
  std::vector<std::vector<Word*>> nodes_;
};

}  // namespace aml::baselines
