// Umbrella header for the Table 1 comparison locks and classic yardsticks.
//
// Common interface (the "abortable lock" concept of the harness):
//   bool enter(Pid self, const std::atomic<bool>* stop);
//   void exit(Pid self);
// Non-abortable locks (MCS, CLH, ticket) accept and ignore the stop flag.
#pragma once

#include "aml/baselines/anderson.hpp"
#include "aml/baselines/clh.hpp"
#include "aml/baselines/jayanti.hpp"
#include "aml/baselines/lee.hpp"
#include "aml/baselines/mcs.hpp"
#include "aml/baselines/scott.hpp"
#include "aml/baselines/tas.hpp"
#include "aml/baselines/ticket.hpp"
#include "aml/baselines/tournament.hpp"
#include "aml/baselines/yang_anderson.hpp"
