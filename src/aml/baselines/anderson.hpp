// Anderson's array-based queue lock (IEEE TPDS 1990): F&A on a ticket
// counter, each waiter spinning on its own array slot. This is exactly the
// substrate the paper's one-shot lock augments with the Tree — so it doubles
// as the "ours minus the Tree" ablation: O(1) RMR per passage, FCFS, but no
// abort support (a waiter cannot give up its slot).
//
// This rendition sizes the slot array by an attempt budget instead of using
// the classic mod-N ring, so it also serves the single-pass RMR experiments
// unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class AndersonLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  AndersonLock(M& mem, Pid /*nprocs*/, std::uint64_t max_attempts)
      : mem_(mem) {
    // +2: slot 0 is pre-granted; the last exit pre-grants one slot past the
    // final attempt.
    slots_.reserve(max_attempts + 2);
    for (std::uint64_t i = 0; i < max_attempts + 2; ++i) {
      slots_.push_back(mem_.alloc(1, i == 0 ? 1 : 0));
    }
    tail_ = mem_.alloc(1, 0);
    mine_.assign(kMaxProcs, 0);
  }

  AndersonLock(const AndersonLock&) = delete;
  AndersonLock& operator=(const AndersonLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* /*stop*/) {
    const std::uint64_t i = mem_.faa(self, *tail_, 1);
    AML_ASSERT(i + 1 < slots_.size(), "Anderson lock attempt budget exceeded");
    mine_[self] = i;
    mem_.wait(
        self, *slots_[i], [](std::uint64_t v) { return v != 0; }, nullptr);
    return true;
  }

  void exit(Pid self) {
    mem_.write(self, *slots_[mine_[self] + 1], 1);
  }

 private:
  static constexpr Pid kMaxProcs = 1 << 16;

  M& mem_;
  Word* tail_ = nullptr;
  std::vector<Word*> slots_;
  std::vector<std::uint64_t> mine_;  ///< process-local
};

}  // namespace aml::baselines
