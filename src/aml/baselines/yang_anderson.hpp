// Yang-Anderson-class tournament lock: a binary arbitration tree whose
// nodes are 2-process Peterson locks using ONLY reads and writes — the
// primitive class for which Omega(log N) RMRs per passage is optimal
// (Attiya, Hendler & Woelfel; cited as [6] in the paper). This is the
// yardstick the paper's Section 1 contrasts F&A-based locks against.
//
// We implement the classic Peterson node (flag[2] + turn, three words)
// rather than Yang & Anderson's exact three-variable protocol; both are
// read/write-only, starvation-free, and O(1) RMRs per level in the CC
// model, which is the property the comparison needs (see DESIGN.md).
//
// The node wait condition spans two words (the rival's flag and the turn),
// which is what the memory models' wait_either primitive exists for.
// Abortable: a process that observes its signal while waiting at a node
// retracts its flag there, releases the node locks below, and returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/bits.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class YangAndersonLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  explicit YangAndersonLock(M& mem, Pid nprocs)
      : mem_(mem), levels_(pal::ceil_log(nprocs, 2)) {
    nodes_.resize(levels_ + 1);
    for (std::uint32_t lvl = 1; lvl <= levels_; ++lvl) {
      const std::uint64_t width = pal::pow_sat(2, levels_ - lvl);
      nodes_[lvl].reserve(width);
      for (std::uint64_t i = 0; i < width; ++i) {
        Node node;
        node.flag[0] = mem_.alloc(1, 0);
        node.flag[1] = mem_.alloc(1, 0);
        node.turn = mem_.alloc(1, 0);
        nodes_[lvl].push_back(node);
      }
    }
  }

  YangAndersonLock(const YangAndersonLock&) = delete;
  YangAndersonLock& operator=(const YangAndersonLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* stop) {
    for (std::uint32_t lvl = 1; lvl <= levels_; ++lvl) {
      const std::uint32_t side = (self >> (lvl - 1)) & 1;
      Node& node = nodes_[lvl][self >> lvl];
      if (!acquire_node(self, node, side, stop)) {
        release_below(self, lvl);
        return false;
      }
    }
    return true;
  }

  void exit(Pid self) { release_below(self, levels_ + 1); }

 private:
  struct Node {
    Word* flag[2];
    Word* turn;
  };

  /// Peterson's algorithm on the node; returns false iff aborted.
  bool acquire_node(Pid self, Node& node, std::uint32_t side,
                    const std::atomic<bool>* stop) {
    mem_.write(self, *node.flag[side], 1);
    mem_.write(self, *node.turn, side);  // give way: "turn == me" waits
    for (;;) {
      const std::uint64_t rival = mem_.read(self, *node.flag[1 - side]);
      if (rival == 0) return true;
      const std::uint64_t turn = mem_.read(self, *node.turn);
      if (turn != side) return true;
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        mem_.write(self, *node.flag[side], 0);
        return false;
      }
      // Park until the rival retracts its flag OR the turn moves off us.
      auto outcome = mem_.wait_either(
          self, *node.flag[1 - side],
          [](std::uint64_t v) { return v == 0; }, *node.turn,
          [side](std::uint64_t v) { return v != side; }, stop);
      if (outcome.stopped) {
        mem_.write(self, *node.flag[side], 0);
        return false;
      }
      // A predicate fired; loop to re-validate both conditions coherently.
      return true;
    }
  }

  void release_below(Pid self, std::uint32_t upto) {
    for (std::uint32_t lvl = upto; lvl-- > 1;) {
      const std::uint32_t side = (self >> (lvl - 1)) & 1;
      mem_.write(self, *nodes_[lvl][self >> lvl].flag[side], 0);
    }
  }

  M& mem_;
  std::uint32_t levels_;
  std::vector<std::vector<Node>> nodes_;
};

}  // namespace aml::baselines
