// CLH queue lock (Craig; Landin & Hagersten): O(1) RMR in the CC model,
// SWAP-based, non-abortable. Included as the implicit-queue counterpart of
// MCS and as the substrate Scott's abortable lock extends.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/concepts.hpp"
#include "aml/pal/config.hpp"

namespace aml::baselines {

template <typename M>
class ClhLock {
 public:
  using Word = typename M::Word;
  using Pid = model::Pid;

  explicit ClhLock(M& mem, Pid nprocs) : mem_(mem) {
    // N+1 nodes: one per process plus the initial released dummy; processes
    // rotate onto their predecessor's node after each passage.
    nodes_.reserve(nprocs + 1);
    for (Pid i = 0; i <= nprocs; ++i) {
      nodes_.push_back(mem_.alloc(1, i == 0 ? kReleased : kLocked));
    }
    tail_ = mem_.alloc(1, 0);  // points at the dummy
    mine_.resize(nprocs);
    pred_.resize(nprocs);
    for (Pid p = 0; p < nprocs; ++p) mine_[p] = p + 1;
  }

  ClhLock(const ClhLock&) = delete;
  ClhLock& operator=(const ClhLock&) = delete;

  bool enter(Pid self, const std::atomic<bool>* /*stop*/) {
    const std::uint32_t my = mine_[self];
    mem_.write(self, *nodes_[my], kLocked);
    const std::uint64_t pred = mem_.swap(self, *tail_, my);
    pred_[self] = static_cast<std::uint32_t>(pred);
    mem_.wait(
        self, *nodes_[pred], [](std::uint64_t v) { return v == kReleased; },
        nullptr);
    return true;
  }

  void exit(Pid self) {
    mem_.write(self, *nodes_[mine_[self]], kReleased);
    mine_[self] = pred_[self];  // recycle the predecessor's node
  }

 private:
  static constexpr std::uint64_t kLocked = 0;
  static constexpr std::uint64_t kReleased = 1;

  M& mem_;
  Word* tail_ = nullptr;
  std::vector<Word*> nodes_;
  std::vector<std::uint32_t> mine_;  ///< process-local
  std::vector<std::uint32_t> pred_;  ///< process-local
};

}  // namespace aml::baselines
