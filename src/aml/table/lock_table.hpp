// LockTable: a sharded named-lock service built from the paper's long-lived
// abortable lock.
//
// Keys (64-bit ids or strings) hash onto S cache-independent *stripes*; each
// stripe owns one LongLivedLock (Section 6 transformation over the Section 3
// one-shot lock) together with that lock's spin-node pool and one-shot
// instance pool. Acquiring a key acquires its stripe's lock, so two keys
// conflict iff they collide on a stripe — the classic lock-manager striping
// trade: S bounds memory (O(S * N * s(N)) words) while abortability bounds
// the damage of a collision (a deadline or deadlock-avoidance signal gets a
// waiter out in a bounded number of its own steps).
//
// The table is templated over the memory model like every algorithm here, so
// the same code runs on native hardware (aml/table/named_table.hpp wraps it
// into the deployable service) and on the counting models under the
// deterministic scheduler — which is how the table's claim is tested: the
// per-passage RMR of a key acquisition inherits the lock's adaptive bound,
// independent of how many threads are registered (bench_table_zipf).
//
// Multi-key acquisition (enter_all) sorts the distinct stripe indices and
// acquires ascending, the standard total-order discipline that makes
// deadlock impossible among enter_all callers; the abort signal still bounds
// the wait against single-key holders, and on abort every stripe taken so
// far is released in reverse order before returning, so the attempt is
// all-or-nothing.
//
// Threading contract: a thread uses a dense id from [0, max_threads)
// (ThreadRegistry leases them) and must not re-enter a stripe it already
// holds (the underlying lock is not reentrant); enter_all deduplicates
// colliding keys within one call, so only *nested* separate calls can
// self-collide.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/core/versioned_space.hpp"
#include "aml/model/types.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/config.hpp"
#include "aml/table/hash.hpp"

namespace aml::table {

using model::Pid;

template <typename M, typename Metrics = obs::NullMetrics>
class LockTable {
 public:
  using StripeLock =
      core::LongLivedLock<M, core::VersionedSpace, core::OneShotLock, Metrics>;
  using MetricsSink = Metrics;

  struct Config {
    Pid max_threads = 16;     ///< N: dense thread ids the table accepts
    std::uint32_t stripes = 16;  ///< S: rounded up to a power of two
    std::uint32_t tree_width = 64;  ///< W of each stripe's tree
    core::Find find = core::Find::kAdaptive;
  };

  LockTable(M& mem, Config config)
      : config_(config), stripe_mask_(round_up_pow2(config.stripes) - 1) {
    AML_ASSERT(config.stripes >= 1, "table needs at least one stripe");
    const std::uint32_t nstripes = stripe_mask_ + 1;
    stripes_.reserve(nstripes);
    for (std::uint32_t s = 0; s < nstripes; ++s) {
      stripes_.push_back(std::make_unique<StripeLock>(
          mem, typename StripeLock::Config{.nprocs = config.max_threads,
                                           .w = config.tree_width,
                                           .find = config.find}));
    }
  }

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  // --- key -> stripe map ---------------------------------------------------

  std::uint32_t stripe_count() const {
    return static_cast<std::uint32_t>(stripes_.size());
  }
  Pid max_threads() const { return config_.max_threads; }

  std::uint32_t stripe_of(std::uint64_t key) const {
    return static_cast<std::uint32_t>(key_hash(key)) & stripe_mask_;
  }
  std::uint32_t stripe_of(std::string_view key) const {
    return static_cast<std::uint32_t>(key_hash(key)) & stripe_mask_;
  }

  /// Direct access to a stripe's lock (introspection / tests).
  StripeLock& stripe(std::uint32_t s) { return *stripes_[s]; }

  // --- single-key operations ----------------------------------------------

  /// Acquire the stripe guarding `key`. Returns false iff `signal` was
  /// observed while waiting (bounded abort); with a null signal it blocks
  /// until acquired (starvation-free).
  template <typename Key>
  bool enter(Pid self, Key key, const std::atomic<bool>* signal = nullptr) {
    return enter_stripe(self, stripe_of(key), signal);
  }

  /// Release the stripe guarding `key`. Caller must hold it.
  template <typename Key>
  void exit(Pid self, Key key) {
    exit_stripe(self, stripe_of(key));
  }

  bool enter_stripe(Pid self, std::uint32_t s,
                    const std::atomic<bool>* signal = nullptr) {
    return stripes_[s]->enter(self, signal).acquired;
  }

  void exit_stripe(Pid self, std::uint32_t s) { stripes_[s]->exit(self); }

  // --- multi-key ordered acquisition --------------------------------------

  /// Map keys to their distinct stripes, sorted ascending — the acquisition
  /// order enter_all uses. Exposed so callers can pre-plan (and tests can
  /// assert the discipline).
  template <typename Key>
  std::vector<std::uint32_t> plan(const std::vector<Key>& keys) const {
    std::vector<std::uint32_t> order;
    order.reserve(keys.size());
    for (const Key& key : keys) order.push_back(stripe_of(key));
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());
    return order;
  }

  /// Acquire every stripe in `order` (ascending, distinct — what plan()
  /// produces). All-or-nothing: if the signal aborts any acquisition, the
  /// stripes already held are released in reverse order and the call returns
  /// false. With a null signal it cannot deadlock against other enter_all
  /// callers (total order) and blocks until all stripes are held.
  bool enter_all(Pid self, const std::vector<std::uint32_t>& order,
                 const std::atomic<bool>* signal = nullptr) {
    AML_DASSERT(std::is_sorted(order.begin(), order.end()) &&
                    std::adjacent_find(order.begin(), order.end()) ==
                        order.end(),
                "enter_all order must be sorted and distinct (use plan())");
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (!enter_stripe(self, order[i], signal)) {
        while (i-- > 0) exit_stripe(self, order[i]);
        return false;
      }
    }
    return true;
  }

  /// Release every stripe in `order` (reverse acquisition order).
  void exit_all(Pid self, const std::vector<std::uint32_t>& order) {
    for (std::size_t i = order.size(); i-- > 0;) {
      exit_stripe(self, order[i]);
    }
  }

  // --- per-stripe observability -------------------------------------------

  /// Bind one sink per stripe (sinks[s] -> stripe s; vector may be shorter,
  /// remaining stripes stay unbound). With per-stripe sinks, contention,
  /// abort, and hand-off statistics roll up per shard, which is how a lock
  /// service spots a hot key range. No-op for NullMetrics.
  void set_stripe_metrics(const std::vector<Metrics*>& sinks) {
    for (std::size_t s = 0; s < sinks.size() && s < stripes_.size(); ++s) {
      stripes_[s]->set_metrics(sinks[s]);
    }
  }

  void set_stripe_metrics(std::uint32_t s, Metrics* sink) {
    stripes_[s]->set_metrics(sink);
  }

 private:
  Config config_;
  std::uint32_t stripe_mask_;
  std::vector<std::unique_ptr<StripeLock>> stripes_;
};

/// RAII single-stripe guard over a LockTable. Check owns() after
/// construction (false means the signal aborted the attempt).
template <typename Table>
class StripeGuard {
 public:
  StripeGuard(Table& table, Pid self, std::uint32_t s,
              const std::atomic<bool>* signal = nullptr)
      : table_(&table), self_(self), stripe_(s),
        owns_(table.enter_stripe(self, s, signal)) {}

  StripeGuard(StripeGuard&& o) noexcept
      : table_(std::exchange(o.table_, nullptr)), self_(o.self_),
        stripe_(o.stripe_), owns_(std::exchange(o.owns_, false)) {}
  StripeGuard& operator=(StripeGuard&&) = delete;
  StripeGuard(const StripeGuard&) = delete;
  StripeGuard& operator=(const StripeGuard&) = delete;

  ~StripeGuard() { release(); }

  bool owns() const { return owns_; }
  explicit operator bool() const { return owns_; }
  std::uint32_t stripe() const { return stripe_; }

  void release() {
    if (owns_) {
      table_->exit_stripe(self_, stripe_);
      owns_ = false;
    }
  }

 private:
  Table* table_;
  Pid self_;
  std::uint32_t stripe_;
  bool owns_;
};

}  // namespace aml::table
