// LockTable: a sharded named-lock service built from the paper's long-lived
// abortable lock — and, per stripe, optionally from the Jayanti & Jayanti
// constant-amortized-RMR lock instead (see "Algorithm-polymorphic stripes").
//
// Keys (64-bit ids or strings) hash onto S cache-independent *stripes*; each
// stripe owns one LongLivedLock (Section 6 transformation over the Section 3
// one-shot lock) together with that lock's spin-node pool and one-shot
// instance pool. Acquiring a key acquires its stripe's lock, so two keys
// conflict iff they collide on a stripe — the classic lock-manager striping
// trade: S bounds memory (O(S * N * s(N)) words) while abortability bounds
// the damage of a collision (a deadline or deadlock-avoidance signal gets a
// waiter out in a bounded number of its own steps).
//
// The table is templated over the memory model like every algorithm here, so
// the same code runs on native hardware (aml/table/named_table.hpp wraps it
// into the deployable service) and on the counting models under the
// deterministic scheduler — which is how the table's claims are tested: the
// per-passage RMR of a key acquisition inherits the lock's adaptive bound,
// independent of how many threads are registered (bench_table_zipf), and
// mutual exclusion holds across a resize epoch transition
// (lock_table_resize_test, bench_table_resize).
//
// == Adaptive stripe resizing (epoch generations) ==
//
// The paper's headline is *adaptive* cost — RMRs that track actual
// contention — so the service layer adapts the same way: the stripe array
// can grow at runtime without stopping the world. resize(S') installs a new
// *generation* (stripe array + mask + per-stripe stats); the old generation
// drains and retires:
//
//   * every key passage pins the current generation (a per-generation
//     refcount) for its whole enter..exit lifetime, and acquires stripes
//     through that generation's mask — so a key never changes stripe
//     mid-hold;
//   * while the previous generation has live pins (passages that started
//     before the switch), a new-generation passage *bridges*: it acquires
//     the key's old-generation stripe first, then its new-generation stripe.
//     Old passages hold only old stripes, new passages hold both, so any two
//     overlapping passages on one key share a stripe lock — mutual exclusion
//     holds across the transition. The bridge orders old stripes strictly
//     before new stripes (each set ascending), a global total order, so
//     multi-key acquisition stays deadlock-free during a drain;
//   * when the old generation's pin count hits zero it is *retired*:
//     bridging stops, and passages cost exactly one stripe lock again.
//     Retirement uses seq_cst on the pin counter and the current-generation
//     pointer (a Dekker-style publication: pinners increment-then-recheck,
//     the resizer publishes-then-reads) so a passage active on the old
//     generation can never be missed.
//
// resize() is non-blocking and grow-only: it returns false when another
// resize is in flight, when the previous drain has not finished, or when the
// target is not larger than the current stripe count. Old stripe arrays are
// kept until table destruction (the counting models cannot free words
// anyway), so readers never race reclamation; memory is bounded by 2x the
// final stripe count.
//
// == Contention stats ==
//
// Every generation carries a cheap always-on StripeStats block per stripe:
// attempts in flight (queue-depth proxy), a high-water mark of that depth,
// and acquisition/abort totals. These are plain cache-padded atomics —
// no model words, so they cost no RMRs and do not perturb the deterministic
// benches. maybe_grow() turns them into an auto-grow policy: when any
// current-generation stripe has seen `inflight_threshold` concurrent
// attempts, double the stripe count (up to `max_stripes`). Full latency
// histograms stay in the optional per-stripe obs::Metrics sinks.
//
// Stats are per generation: inflight/max_inflight start at zero in every new
// generation, so a high-water mark earned *before* a grow can never re-fire
// GrowPolicy right after it and double the table to max_stripes in one storm
// (each further grow must be provoked by fresh contention on the new, wider
// array). Acquisition/abort *rates*, by contrast, stay meaningful across a
// grow: each new stripe is seeded with its parent stripe's totals divided by
// the grow fan-out (a parent splits into nstripes/prev_count children, so the
// children's inherited history sums back to the parent's), exposed as
// StripeStatsView::inherited_* and folded into HybridPolicy decisions so a
// freshly split stripe keeps its contention history until it earns its own.
//
// == Algorithm-polymorphic stripes (HybridPolicy) ==
//
// Each stripe lock is chosen per stripe at generation build time between two
// algorithms with complementary cost signatures:
//
//   * StripeAlgo::kPaper — the paper's long-lived lock: worst-case adaptive
//     O(log_W A) RMR per passage, robust under abort storms;
//   * StripeAlgo::kAmortized — the Jayanti & Jayanti queue lock
//     (baselines/jayanti.hpp): O(1) *amortized* RMR, cheaper on steady
//     workloads, but a single passage can pay for a run of concurrent
//     aborts.
//
// Config::algo picks the uniform default. When Config::hybrid.enabled, each
// resize() re-chooses per stripe from the parent stripe's observed abort
// rate (live totals + inherited seed): rate >= abort_rate_threshold selects
// the paper lock, below it the amortized lock; stripes whose parents lack
// min_samples attempts inherit the parent's algorithm unchanged. The drain's
// dual-acquire bridging is algorithm-agnostic — an overlapping passage holds
// the old stripe's lock whichever algorithm either generation uses — so
// mutual exclusion is preserved across an algorithm switch (covered by the
// table_hybrid_resize_bridge DPOR workload).
//
// Multi-key acquisition (enter_hashes) sorts the distinct stripe indices and
// acquires ascending, the standard total-order discipline that makes
// deadlock impossible among multi-key callers; the abort signal still bounds
// the wait against single-key holders, and on abort every stripe taken so
// far is released in reverse order before returning, so the attempt is
// all-or-nothing.
//
// Threading contract: a thread uses a dense id from [0, max_threads)
// (ThreadRegistry leases them) and must not re-enter a stripe it already
// holds (the underlying lock is not reentrant); enter_hashes deduplicates
// colliding keys within one call, so only *nested* separate calls can
// self-collide. The key-based layer (enter/exit, enter_hashes/exit_hashes)
// is safe concurrent with resize(); the raw stripe-index layer
// (enter_stripe/exit_stripe, plan/enter_all/exit_all) addresses the current
// generation only and must not run concurrently with resize.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "aml/baselines/jayanti.hpp"
#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/core/versioned_space.hpp"
#include "aml/model/types.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"
#include "aml/pal/edges.hpp"
#include "aml/table/hash.hpp"

namespace aml::table {

using model::Pid;

/// Hard cap on stripe counts (construction and resize): 2^20 stripes is far
/// beyond any sane shard factor and keeps round_up_pow2 comfortably inside
/// its domain.
inline constexpr std::uint32_t kMaxStripes = std::uint32_t{1} << 20;

/// Per-stripe lock algorithm (see "Algorithm-polymorphic stripes" above).
enum class StripeAlgo : std::uint8_t {
  kPaper,      ///< paper long-lived lock: worst-case adaptive O(log_W A)
  kAmortized,  ///< Jayanti & Jayanti queue lock: O(1) amortized RMR
};

/// Per-stripe algorithm re-choice policy, evaluated at every resize() the
/// same way GrowPolicy is evaluated by maybe_grow(). Disabled by default:
/// every stripe then inherits its parent's (ultimately Config::algo's)
/// algorithm.
struct HybridPolicy {
  bool enabled = false;
  /// Parent abort rate at/above which a new stripe gets the paper lock
  /// (abort storms dominate); below it the amortized lock (steady traffic).
  double abort_rate_threshold = 0.125;
  /// Parent attempts (live + inherited) required to trust its rate; thin
  /// parents pass their algorithm through unchanged.
  std::uint64_t min_samples = 16;
};

/// A stripe lock that is one of the two algorithms, chosen at construction.
/// Presents the long-lived lock interface the table (and NamedLockTable's
/// sink binding) expects; the amortized lock's bool protocol is adapted to
/// EnterResult with slot 0, and its grant/abort metrics are forwarded at this
/// layer since the baseline itself is metrics-free.
template <typename M, typename Metrics = obs::NullMetrics>
class PolyStripeLock {
 public:
  using PaperLock =
      core::LongLivedLock<M, core::VersionedSpace, core::OneShotLock, Metrics>;
  using AmortizedLock = baselines::JayantiAbortableLock<M>;
  using Config = typename PaperLock::Config;

  PolyStripeLock(M& mem, Config config, StripeAlgo algo) : algo_(algo) {
    if (algo == StripeAlgo::kPaper) {
      paper_ = std::make_unique<PaperLock>(mem, config);
    } else {
      amortized_ = std::make_unique<AmortizedLock>(mem, config.nprocs);
    }
  }

  StripeAlgo algo() const { return algo_; }

  core::EnterResult enter(Pid self, const std::atomic<bool>* signal) {
    if (paper_ != nullptr) return paper_->enter(self, signal);
    sink_.on_enter(self, 0);
    core::EnterResult result;
    result.acquired = amortized_->enter(self, signal);
    result.slot = 0;
    if (result.acquired) {
      sink_.on_granted(self, result.slot);
    } else {
      sink_.on_abort(self, result.slot);
    }
    return result;
  }

  void exit(Pid self) {
    if (paper_ != nullptr) {
      paper_->exit(self);
    } else {
      sink_.on_exit(self, 0);
      amortized_->exit(self);
    }
  }

  /// Same binding contract as LongLivedLock::set_metrics: set before the
  /// instrumented processes start (construction or resize()'s
  /// on_stripe_built hook), never concurrent with passages.
  void set_metrics(Metrics* sink) {
    if (paper_ != nullptr) {
      paper_->set_metrics(sink);
    } else {
      sink_.bind(sink);
    }
  }

  /// Introspection: non-null exactly for the matching algo().
  PaperLock* paper() { return paper_.get(); }
  AmortizedLock* amortized() { return amortized_.get(); }

 private:
  StripeAlgo algo_;
  std::unique_ptr<PaperLock> paper_;
  std::unique_ptr<AmortizedLock> amortized_;
  [[no_unique_address]] obs::SinkHandle<Metrics> sink_;  ///< amortized path
};

template <typename M, typename Metrics = obs::NullMetrics>
class LockTable {
 public:
  using StripeLock = PolyStripeLock<M, Metrics>;
  using PaperStripeLock = typename StripeLock::PaperLock;
  using MetricsSink = Metrics;

  struct Config {
    Pid max_threads = 16;     ///< N: dense thread ids the table accepts
    std::uint32_t stripes = 16;  ///< S: rounded up to a power of two
    std::uint32_t tree_width = 64;  ///< W of each stripe's tree
    core::Find find = core::Find::kAdaptive;
    StripeAlgo algo = StripeAlgo::kPaper;  ///< uniform default algorithm
    HybridPolicy hybrid{};  ///< per-stripe re-choice on resize
  };

  /// Always-on per-stripe contention snapshot (see stripe_stats()).
  struct StripeStatsView {
    std::uint64_t acquisitions = 0;  ///< granted passages through the stripe
    std::uint64_t aborts = 0;        ///< attempts abandoned via the signal
    std::uint32_t inflight = 0;      ///< attempts running right now
    std::uint32_t max_inflight = 0;  ///< high-water mark of `inflight`
    std::uint64_t inherited_attempts = 0;  ///< parent-seeded attempt history
    std::uint64_t inherited_aborts = 0;    ///< parent-seeded abort history
  };

  /// Auto-grow policy evaluated by maybe_grow().
  struct GrowPolicy {
    std::uint32_t inflight_threshold = 4;  ///< stripe depth that flags "hot"
    std::uint32_t max_stripes = 1024;      ///< never grow beyond this
  };

  /// Invoked by resize() for each newly built stripe lock *before* the new
  /// generation becomes visible — the race-free point to bind metrics sinks.
  using StripeBuiltFn = std::function<void(std::uint32_t, StripeLock&)>;

  LockTable(M& mem, Config config) : mem_(mem), config_(config) {
    AML_ASSERT(config.max_threads >= 1, "table needs at least one thread id");
    AML_ASSERT(config.stripes >= 1 && config.stripes <= kMaxStripes,
               "Config::stripes out of [1, kMaxStripes]");
    locals_ = std::vector<pal::CachePadded<PidLocal>>(config.max_threads);
    gens_.push_back(make_generation(round_up_pow2(config.stripes), 0,
                                    /*prev=*/nullptr, nullptr));
    current_.store(gens_.back().get(),  // AML_V_EDGE(table.gen_publish)
                   std::memory_order_release);
  }

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  // --- key -> stripe map ---------------------------------------------------

  static constexpr std::uint64_t hash_of(std::uint64_t key) {
    return key_hash(key);
  }
  static constexpr std::uint64_t hash_of(std::string_view key) {
    return key_hash(key);
  }

  std::uint32_t stripe_count() const { return cur().mask + 1; }
  Pid max_threads() const { return config_.max_threads; }

  /// Current-generation epoch (0 at construction, +1 per resize).
  std::uint64_t epoch() const { return cur().epoch; }

  /// True while the previous generation still has pinned passages (new
  /// acquisitions bridge both generations' stripes).
  bool draining() const {
    const Generation& g = cur();
    return g.prev != nullptr &&
           !g.prev->retired.load(std::memory_order_seq_cst);
  }

  std::uint32_t stripe_of(std::uint64_t key) const {
    return static_cast<std::uint32_t>(key_hash(key)) & cur().mask;
  }
  std::uint32_t stripe_of(std::string_view key) const {
    return static_cast<std::uint32_t>(key_hash(key)) & cur().mask;
  }

  /// Direct access to a current-generation stripe's lock (introspection /
  /// tests; not stable across resize).
  StripeLock& stripe(std::uint32_t s) { return *cur_mut().stripes[s]; }

  /// Algorithm of current-generation stripe `s` (not stable across resize).
  StripeAlgo stripe_algo(std::uint32_t s) const {
    return cur().stripes[s]->algo();
  }

  // --- single-key operations (resize-safe) ---------------------------------

  /// Acquire the stripe guarding `key`. Returns false iff `signal` was
  /// observed while waiting (bounded abort); with a null signal it blocks
  /// until acquired (starvation-free). Safe concurrent with resize(): the
  /// passage pins its generation, and during a drain it bridges the old
  /// generation's stripe (see header comment).
  template <typename Key>
  bool enter(Pid self, Key key, const std::atomic<bool>* signal = nullptr) {
    return enter_hash(self, key_hash(key), signal);
  }

  /// Release the stripe(s) guarding `key`. Caller must hold it.
  template <typename Key>
  void exit(Pid self, Key key) {
    exit_hash(self, key_hash(key));
  }

  bool enter_hash(Pid self, std::uint64_t hash,
                  const std::atomic<bool>* signal = nullptr) {
    Generation* gen = pin(self);
    Generation* old_gen = bridge_target(*gen);
    const std::uint32_t s_new = static_cast<std::uint32_t>(hash) & gen->mask;
    std::uint32_t s_old = 0;
    if (old_gen != nullptr) {
      s_old = static_cast<std::uint32_t>(hash) & old_gen->mask;
      if (!acquire_gen_stripe(*old_gen, self, s_old, signal)) {
        unpin(gen);
        return false;
      }
    }
    if (!acquire_gen_stripe(*gen, self, s_new, signal)) {
      if (old_gen != nullptr) old_gen->stripes[s_old]->exit(self);
      unpin(gen);
      return false;
    }
    locals_[self]->singles.push_back(
        SingleHold{hash, gen, old_gen, s_new, s_old});
    return true;
  }

  void exit_hash(Pid self, std::uint64_t hash) {
    auto& singles = locals_[self]->singles;
    for (std::size_t i = singles.size(); i-- > 0;) {
      if (singles[i].hash != hash) continue;
      const SingleHold hold = singles[i];
      singles.erase(singles.begin() + static_cast<std::ptrdiff_t>(i));
      hold.gen->stripes[hold.s_new]->exit(self);
      if (hold.old_gen != nullptr) hold.old_gen->stripes[hold.s_old]->exit(self);
      unpin(hold.gen);
      return;
    }
    AML_ASSERT(false, "exit_hash: key is not held by this thread");
  }

  // --- multi-key ordered acquisition (resize-safe) --------------------------

  /// Sorted, deduplicated key hashes — the identity enter_hashes/exit_hashes
  /// operate on (stable across resize, unlike stripe indices).
  template <typename Key>
  std::vector<std::uint64_t> plan_hashes(const std::vector<Key>& keys) const {
    std::vector<std::uint64_t> hashes;
    hashes.reserve(keys.size());
    for (const Key& key : keys) hashes.push_back(key_hash(key));
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
    return hashes;
  }

  /// All-or-nothing acquisition of every key in `hashes` (sorted, distinct —
  /// what plan_hashes() produces). Stripes are taken in a global total order
  /// (old generation ascending, then current generation ascending), so
  /// enter_hashes callers cannot deadlock each other even mid-drain. If the
  /// signal aborts any acquisition, the stripes already held are released in
  /// reverse order and the call returns false.
  bool enter_hashes(Pid self, const std::vector<std::uint64_t>& hashes,
                    const std::atomic<bool>* signal = nullptr) {
    AML_DASSERT(std::is_sorted(hashes.begin(), hashes.end()) &&
                    std::adjacent_find(hashes.begin(), hashes.end()) ==
                        hashes.end(),
                "enter_hashes input must be sorted and distinct "
                "(use plan_hashes())");
    Generation* gen = pin(self);
    Generation* old_gen = bridge_target(*gen);
    MultiHold hold;
    hold.hashes = hashes;
    hold.gen = gen;
    hold.old_gen = old_gen;
    hold.order_new = stripe_order(hashes, gen->mask);
    if (old_gen != nullptr) {
      hold.order_old = stripe_order(hashes, old_gen->mask);
    }
    for (std::size_t i = 0; i < hold.order_old.size(); ++i) {
      if (!acquire_gen_stripe(*old_gen, self, hold.order_old[i], signal)) {
        while (i-- > 0) old_gen->stripes[hold.order_old[i]]->exit(self);
        unpin(gen);
        return false;
      }
    }
    for (std::size_t i = 0; i < hold.order_new.size(); ++i) {
      if (!acquire_gen_stripe(*gen, self, hold.order_new[i], signal)) {
        while (i-- > 0) gen->stripes[hold.order_new[i]]->exit(self);
        for (std::size_t j = hold.order_old.size(); j-- > 0;) {
          old_gen->stripes[hold.order_old[j]]->exit(self);
        }
        unpin(gen);
        return false;
      }
    }
    locals_[self]->multis.push_back(std::move(hold));
    return true;
  }

  /// Release a set acquired by enter_hashes (same sorted distinct hashes).
  void exit_hashes(Pid self, const std::vector<std::uint64_t>& hashes) {
    auto& multis = locals_[self]->multis;
    for (std::size_t i = multis.size(); i-- > 0;) {
      if (multis[i].hashes != hashes) continue;
      MultiHold hold = std::move(multis[i]);
      multis.erase(multis.begin() + static_cast<std::ptrdiff_t>(i));
      for (std::size_t j = hold.order_new.size(); j-- > 0;) {
        hold.gen->stripes[hold.order_new[j]]->exit(self);
      }
      for (std::size_t j = hold.order_old.size(); j-- > 0;) {
        hold.old_gen->stripes[hold.order_old[j]]->exit(self);
      }
      unpin(hold.gen);
      return;
    }
    AML_ASSERT(false, "exit_hashes: key set is not held by this thread");
  }

  // --- raw stripe-index layer (current generation; NOT resize-safe) --------

  /// Map keys to their distinct current-generation stripes, sorted ascending
  /// — the acquisition order enter_all uses. Exposed so callers can pre-plan
  /// (and tests can assert the discipline). Indices are only meaningful
  /// while no resize intervenes.
  template <typename Key>
  std::vector<std::uint32_t> plan(const std::vector<Key>& keys) const {
    std::vector<std::uint32_t> order;
    order.reserve(keys.size());
    for (const Key& key : keys) order.push_back(stripe_of(key));
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());
    return order;
  }

  bool enter_stripe(Pid self, std::uint32_t s,
                    const std::atomic<bool>* signal = nullptr) {
    return acquire_gen_stripe(cur_mut(), self, s, signal);
  }

  void exit_stripe(Pid self, std::uint32_t s) { cur_mut().stripes[s]->exit(self); }

  /// Acquire every stripe in `order` (ascending, distinct — what plan()
  /// produces). All-or-nothing: if the signal aborts any acquisition, the
  /// stripes already held are released in reverse order and the call returns
  /// false. With a null signal it cannot deadlock against other enter_all
  /// callers (total order) and blocks until all stripes are held.
  bool enter_all(Pid self, const std::vector<std::uint32_t>& order,
                 const std::atomic<bool>* signal = nullptr) {
    AML_DASSERT(std::is_sorted(order.begin(), order.end()) &&
                    std::adjacent_find(order.begin(), order.end()) ==
                        order.end(),
                "enter_all order must be sorted and distinct (use plan())");
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (!enter_stripe(self, order[i], signal)) {
        while (i-- > 0) exit_stripe(self, order[i]);
        return false;
      }
    }
    return true;
  }

  /// Release every stripe in `order` (reverse acquisition order).
  void exit_all(Pid self, const std::vector<std::uint32_t>& order) {
    for (std::size_t i = order.size(); i-- > 0;) {
      exit_stripe(self, order[i]);
    }
  }

  // --- resizing ------------------------------------------------------------

  /// Grow the stripe array to round_up_pow2(new_stripes). Non-blocking and
  /// grow-only: returns false (and does nothing) when another resize is in
  /// flight, the previous generation is still draining, or the target is not
  /// larger than the current count. On success the new generation is visible
  /// to every subsequent acquisition; passages already running drain against
  /// the old array (see header comment). `on_stripe_built` runs for each new
  /// stripe before publication — bind per-stripe metrics sinks there.
  bool resize(std::uint32_t new_stripes,
              const StripeBuiltFn& on_stripe_built = nullptr) {
    AML_ASSERT(new_stripes >= 1 && new_stripes <= kMaxStripes,
               "resize target out of [1, kMaxStripes]");
    const std::uint32_t target = round_up_pow2(new_stripes);
    // Winning the exchange acquires the previous resizer's release below,
    // so generation bookkeeping (gens_, seed stats) is owned exclusively.
    if (resizing_.exchange(true, std::memory_order_acq_rel)) {  // AML_X_EDGE(table.resize_guard)
      return false;
    }
    Generation* old_gen = current_.load(std::memory_order_seq_cst);
    if (target <= old_gen->mask + 1 ||
        (old_gen->prev != nullptr &&
         !old_gen->prev->retired.load(std::memory_order_seq_cst))) {
      resizing_.store(false, std::memory_order_release);  // AML_V_EDGE(table.resize_guard)
      return false;
    }
    gens_.push_back(make_generation(target, old_gen->epoch + 1, old_gen,
                                    on_stripe_built));
    Generation* next = gens_.back().get();
    // seq_cst required (Dekker with pin()'s increment-then-recheck), and
    // also the release side of the generation publication.
    current_.store(next, std::memory_order_seq_cst);  // AML_V_EDGE(table.gen_publish)
    // If no passage is pinned to the old generation, retire it right here —
    // no unpin will ever fire for it again. (Dekker pairing with pin(): the
    // seq_cst store above precedes this load, so a passage that saw the old
    // pointer has its increment visible here.)
    if (old_gen->pins.load(std::memory_order_seq_cst) == 0) {
      maybe_retire(old_gen);
    }
    resizing_.store(false, std::memory_order_release);  // AML_V_EDGE(table.resize_guard)
    return true;
  }

  /// Evaluate the auto-grow policy against the current generation's stats:
  /// when any stripe's attempt-depth high-water mark reaches
  /// `policy.inflight_threshold`, double the stripe count (capped at
  /// `policy.max_stripes`). Returns true iff a resize happened.
  bool maybe_grow(const GrowPolicy& policy,
                  const StripeBuiltFn& on_stripe_built = nullptr) {
    const Generation& g = cur();
    const std::uint32_t count = g.mask + 1;
    if (count * 2 > policy.max_stripes) return false;
    bool hot = false;
    for (std::uint32_t s = 0; s < count && !hot; ++s) {
      hot = g.stats[s]->max_inflight.load(std::memory_order_relaxed) >=  // AML_RELAXED(stats high-water probe)
            policy.inflight_threshold;
    }
    if (!hot) return false;
    return resize(count * 2, on_stripe_built);
  }

  // --- per-stripe observability --------------------------------------------

  /// Always-on contention counters of current-generation stripe `s`. The
  /// snapshot is only consistent once writers quiesce, like every relaxed
  /// counter block; `inflight` is exact at the instant of each load.
  StripeStatsView stripe_stats(std::uint32_t s) const {
    const StripeStats& st = *cur().stats[s];
    StripeStatsView view;
    view.acquisitions = st.acquisitions.load(std::memory_order_relaxed);  // AML_RELAXED(stats snapshot)
    view.aborts = st.aborts.load(std::memory_order_relaxed);  // AML_RELAXED(stats snapshot)
    view.inflight = st.inflight.load(std::memory_order_relaxed);  // AML_RELAXED(stats snapshot)
    view.max_inflight = st.max_inflight.load(std::memory_order_relaxed);  // AML_RELAXED(stats snapshot)
    view.inherited_attempts = st.seed_attempts;
    view.inherited_aborts = st.seed_aborts;
    return view;
  }

  /// Largest attempt-depth high-water mark across current-generation stripes
  /// (the scalar the auto-grow policy keys on).
  std::uint32_t peak_inflight() const {
    const Generation& g = cur();
    std::uint32_t peak = 0;
    for (std::uint32_t s = 0; s <= g.mask; ++s) {
      peak = std::max(
          peak,
          g.stats[s]->max_inflight.load(std::memory_order_relaxed));  // AML_RELAXED(stats high-water probe)
    }
    return peak;
  }

  /// Bind one sink per current-generation stripe (sinks[s] -> stripe s; the
  /// vector may be shorter, remaining stripes stay unbound). With per-stripe
  /// sinks, contention, abort, and hand-off statistics roll up per shard,
  /// which is how a lock service spots a hot key range. No-op for
  /// NullMetrics. NOT thread-safe: must not run concurrent with enter/exit
  /// or resize on this table (bind at construction, or through resize()'s
  /// on_stripe_built hook).
  void set_stripe_metrics(const std::vector<Metrics*>& sinks) {
    Generation& g = cur_mut();
    for (std::size_t s = 0; s < sinks.size() && s <= g.mask; ++s) {
      g.stripes[s]->set_metrics(sinks[s]);
    }
  }

  void set_stripe_metrics(std::uint32_t s, Metrics* sink) {
    cur_mut().stripes[s]->set_metrics(sink);
  }

  // --- analysis introspection ----------------------------------------------

  /// Snapshot of one stripe-array generation for the invariant oracles in
  /// aml/analysis/oracles.hpp.
  struct GenerationView {
    std::uint64_t epoch = 0;
    std::uint32_t stripe_count = 0;
    std::uint64_t pins = 0;
    bool retired = false;
    bool is_current = false;
  };

  /// All generations ever created, oldest first. Generations are never freed
  /// before the table, and `gens_` only grows inside resize(), which on a
  /// scheduled model runs entirely within one granted step window — so the
  /// snapshot is consistent whenever every worker is parked (the only time
  /// oracle probes run). Not meaningful under free-running native threads.
  std::vector<GenerationView> debug_generations() const {
    std::vector<GenerationView> out;
    const Generation* current = current_.load(std::memory_order_acquire);  // AML_X_EDGE(table.gen_publish)
    out.reserve(gens_.size());
    for (const auto& g : gens_) {
      GenerationView v;
      v.epoch = g->epoch;
      v.stripe_count = g->mask + 1;
      v.pins = g->pins.load(std::memory_order_acquire);  // AML_X_EDGE(table.gen_quiesce)
      v.retired = g->retired.load(std::memory_order_acquire);  // AML_X_EDGE(table.gen_quiesce)
      v.is_current = (g.get() == current);
      out.push_back(v);
    }
    return out;
  }

  /// Test-only: bias generation `gen_idx`'s pin count to manufacture an
  /// illegal state (e.g. a retired generation with pinned passages) so oracle
  /// fire-tests can observe a violation. Never call outside tests.
  void debug_corrupt_pins(std::size_t gen_idx, std::uint64_t delta) {
    gens_[gen_idx]->pins.fetch_add(delta, std::memory_order_seq_cst);
  }

  /// Test-only: force generation `gen_idx`'s retired flag. See
  /// debug_corrupt_pins.
  void debug_force_retired(std::size_t gen_idx, bool retired) {
    gens_[gen_idx]->retired.store(retired, std::memory_order_seq_cst);
  }

 private:
  /// Always-on per-stripe counters (plain atomics: no model words, no RMRs).
  /// The seed_* fields are the parent stripe's halved totals, written once at
  /// generation build (before publication, hence plain) — rate history for
  /// HybridPolicy, deliberately NOT counted by GrowPolicy (see "Contention
  /// stats" in the header comment).
  struct StripeStats {
    std::atomic<std::uint64_t> acquisitions{0};
    std::atomic<std::uint64_t> aborts{0};
    std::atomic<std::uint32_t> inflight{0};
    std::atomic<std::uint32_t> max_inflight{0};
    std::uint64_t seed_attempts = 0;
    std::uint64_t seed_aborts = 0;
  };

  /// One stripe-array epoch. Old generations are kept (never freed before
  /// the table) so passages draining against them never race reclamation.
  struct Generation {
    std::uint32_t mask = 0;
    std::uint64_t epoch = 0;
    Generation* prev = nullptr;  ///< the generation this one superseded
    std::vector<std::unique_ptr<StripeLock>> stripes;
    std::vector<pal::CachePadded<StripeStats>> stats;
    std::atomic<std::uint64_t> pins{0};   ///< passages in flight on this gen
    std::atomic<bool> retired{false};     ///< fully drained; bridging over
  };

  struct SingleHold {
    std::uint64_t hash;
    Generation* gen;
    Generation* old_gen;  ///< non-null when the passage bridged the drain
    std::uint32_t s_new;
    std::uint32_t s_old;
  };

  struct MultiHold {
    std::vector<std::uint64_t> hashes;  ///< sorted distinct; exit identity
    Generation* gen = nullptr;
    Generation* old_gen = nullptr;
    std::vector<std::uint32_t> order_new;  ///< acquired stripes, ascending
    std::vector<std::uint32_t> order_old;  ///< empty when not bridged
  };

  /// Per-thread hold records (touched only by the owning dense id).
  struct PidLocal {
    std::vector<SingleHold> singles;
    std::vector<MultiHold> multis;
  };

  const Generation& cur() const {
    return *current_.load(std::memory_order_acquire);  // AML_X_EDGE(table.gen_publish)
  }
  Generation& cur_mut() {
    return *current_.load(std::memory_order_acquire);  // AML_X_EDGE(table.gen_publish)
  }

  /// Algorithm for a new stripe: the uniform default at construction;
  /// across a resize, the parent's algorithm, re-chosen from the parent's
  /// abort rate when HybridPolicy is enabled and the parent has enough
  /// samples (live + inherited) to trust it.
  StripeAlgo choose_algo(std::uint32_t s, Generation* prev) const {
    if (prev == nullptr) return config_.algo;
    const std::uint32_t parent = s & prev->mask;
    StripeAlgo algo = prev->stripes[parent]->algo();
    if (!config_.hybrid.enabled) return algo;
    const StripeStats& pst = *prev->stats[parent];
    const std::uint64_t live_aborts =
        pst.aborts.load(std::memory_order_relaxed);  // AML_RELAXED(stats; resize guard owns the epoch)
    const std::uint64_t aborts = live_aborts + pst.seed_aborts;
    const std::uint64_t attempts =
        pst.acquisitions.load(std::memory_order_relaxed) +  // AML_RELAXED(stats; resize guard owns the epoch)
        live_aborts + pst.seed_attempts;
    // attempts == 0 must inherit even when min_samples == 0: 0/0 is NaN and
    // every NaN comparison is false, which would silently pick kAmortized.
    if (attempts == 0 || attempts < config_.hybrid.min_samples) return algo;
    const double rate =
        static_cast<double>(aborts) / static_cast<double>(attempts);
    return rate >= config_.hybrid.abort_rate_threshold ? StripeAlgo::kPaper
                                                       : StripeAlgo::kAmortized;
  }

  std::unique_ptr<Generation> make_generation(
      std::uint32_t nstripes, std::uint64_t epoch, Generation* prev,
      const StripeBuiltFn& on_stripe_built) {
    auto gen = std::make_unique<Generation>();
    gen->mask = nstripes - 1;
    gen->epoch = epoch;
    gen->prev = prev;
    gen->stripes.reserve(nstripes);
    gen->stats = std::vector<pal::CachePadded<StripeStats>>(nstripes);
    // Resize is grow-only over powers of two, so every parent stripe splits
    // into exactly `fanout` children; dividing the carried-over totals by it
    // keeps the children's inherited history summing to the parent's (a
    // constant /2 would double-count on a >2x jump).
    const std::uint64_t fanout =
        prev != nullptr ? nstripes / (prev->mask + std::uint64_t{1}) : 1;
    for (std::uint32_t s = 0; s < nstripes; ++s) {
      gen->stripes.push_back(std::make_unique<StripeLock>(
          mem_,
          typename StripeLock::Config{.nprocs = config_.max_threads,
                                      .w = config_.tree_width,
                                      .find = config_.find},
          choose_algo(s, prev)));
      if (prev != nullptr) {
        // Rate history carries over (split evenly across the parent's
        // children); depth high-water marks deliberately do not — every
        // further grow must be provoked by fresh contention.
        const StripeStats& pst = *prev->stats[s & prev->mask];
        StripeStats& st = *gen->stats[s];
        const std::uint64_t pacq =
            pst.acquisitions.load(std::memory_order_relaxed);  // AML_RELAXED(stats; resize guard owns the epoch)
        const std::uint64_t pab =
            pst.aborts.load(std::memory_order_relaxed);  // AML_RELAXED(stats; resize guard owns the epoch)
        st.seed_attempts = (pst.seed_attempts + pacq + pab) / fanout;
        st.seed_aborts = (pst.seed_aborts + pab) / fanout;
      }
      if (on_stripe_built) on_stripe_built(s, *gen->stripes.back());
    }
    return gen;
  }

  /// Pin the current generation for one passage. The increment-then-recheck
  /// (all seq_cst) pairs with resize()'s publish-then-read: either the
  /// pinner lands on the generation that is still current, or it retries on
  /// the new one — a stale pin is withdrawn before any stripe is touched.
  Generation* pin(Pid /*self*/) {
    for (;;) {
      Generation* g = current_.load(std::memory_order_seq_cst);
      g->pins.fetch_add(1, std::memory_order_seq_cst);
      if (current_.load(std::memory_order_seq_cst) == g) return g;
      unpin(g);
    }
  }

  void unpin(Generation* g) {
    // seq_cst for the Dekker with resize(); also the release side the
    // quiescence probes acquire.
    if (g->pins.fetch_sub(1, std::memory_order_seq_cst) == 1) {  // AML_V_EDGE(table.gen_quiesce)
      maybe_retire(g);
    }
  }

  /// Retire `g` if it is superseded and drained. Idempotent; racing callers
  /// can both store true.
  void maybe_retire(Generation* g) {
    if (current_.load(std::memory_order_seq_cst) == g) return;
    if (g->pins.load(std::memory_order_seq_cst) != 0) return;
    g->retired.store(true, std::memory_order_seq_cst);  // AML_V_EDGE(table.gen_quiesce)
  }

  /// The generation a new passage on `gen` must bridge, or null when the
  /// predecessor has fully drained. A false-positive (prev retires just
  /// after the load) only costs one uncontended extra acquisition; a
  /// false-negative is impossible while any old passage is live (see
  /// maybe_retire's seq_cst pairing).
  Generation* bridge_target(Generation& gen) {
    Generation* prev = gen.prev;
    if (prev == nullptr || prev->retired.load(std::memory_order_seq_cst)) {
      return nullptr;
    }
    return prev;
  }

  /// One stripe acquisition with always-on stats: depth in/out, grant/abort
  /// totals, high-water mark.
  bool acquire_gen_stripe(Generation& gen, Pid self, std::uint32_t s,
                          const std::atomic<bool>* signal) {
    StripeStats& st = *gen.stats[s];
    const std::uint32_t depth =
        st.inflight.fetch_add(1, std::memory_order_relaxed) + 1;  // AML_RELAXED(stats counter)
    std::uint32_t seen =
        st.max_inflight.load(std::memory_order_relaxed);  // AML_RELAXED(stats counter)
    while (seen < depth &&
           !st.max_inflight.compare_exchange_weak(  // AML_RELAXED(stats high-water CAS)
               seen, depth, std::memory_order_relaxed)) {
    }
    const bool ok = gen.stripes[s]->enter(self, signal).acquired;
    st.inflight.fetch_sub(1, std::memory_order_relaxed);  // AML_RELAXED(stats counter)
    if (ok) {
      st.acquisitions.fetch_add(1, std::memory_order_relaxed);  // AML_RELAXED(stats counter)
    } else {
      st.aborts.fetch_add(1, std::memory_order_relaxed);  // AML_RELAXED(stats counter)
    }
    return ok;
  }

  static std::vector<std::uint32_t> stripe_order(
      const std::vector<std::uint64_t>& hashes, std::uint32_t mask) {
    std::vector<std::uint32_t> order;
    order.reserve(hashes.size());
    for (const std::uint64_t h : hashes) {
      order.push_back(static_cast<std::uint32_t>(h) & mask);
    }
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());
    return order;
  }

  M& mem_;
  Config config_;
  std::vector<std::unique_ptr<Generation>> gens_;  ///< resize-serialized
  std::atomic<Generation*> current_{nullptr};
  std::atomic<bool> resizing_{false};
  std::vector<pal::CachePadded<PidLocal>> locals_;
};

/// RAII single-stripe guard over a LockTable's raw stripe layer. Check
/// owns() after construction (false means the signal aborted the attempt).
/// Move transfers ownership: the moved-from guard owns nothing and its
/// destructor/release() are no-ops. Not resize-safe (raw layer).
template <typename Table>
class StripeGuard {
 public:
  StripeGuard(Table& table, Pid self, std::uint32_t s,
              const std::atomic<bool>* signal = nullptr)
      : table_(&table), self_(self), stripe_(s),
        owns_(table.enter_stripe(self, s, signal)) {}

  StripeGuard(StripeGuard&& o) noexcept
      : table_(std::exchange(o.table_, nullptr)), self_(o.self_),
        stripe_(o.stripe_), owns_(std::exchange(o.owns_, false)) {}
  StripeGuard& operator=(StripeGuard&&) = delete;
  StripeGuard(const StripeGuard&) = delete;
  StripeGuard& operator=(const StripeGuard&) = delete;

  ~StripeGuard() { release(); }

  bool owns() const { return owns_; }
  explicit operator bool() const { return owns_; }
  std::uint32_t stripe() const { return stripe_; }

  void release() {
    if (owns_) {
      table_->exit_stripe(self_, stripe_);
      owns_ = false;
    }
  }

 private:
  Table* table_;
  Pid self_;
  std::uint32_t stripe_;
  bool owns_;
};

}  // namespace aml::table
