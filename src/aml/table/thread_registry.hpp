// ThreadRegistry: lock-free leasing of dense process ids.
//
// Every algorithm in this library identifies processes by a dense integer in
// [0, max_threads) — the paper's fixed-N model. That is fine for benchmark
// harnesses that spawn exactly N threads, but a servable lock table is used
// from thread pools whose OS threads come and go. The registry bridges the
// two worlds: an OS thread *leases* a slot (lock-free: one CAS on a bitmap
// word in the common case), uses the dense id for any number of lock
// operations, and releases it on scope exit via the RAII Lease. Released ids
// are immediately reusable by other threads, so a pool of P live threads
// needs only max_threads >= P, not one id per thread ever created.
//
// Unlike aml::ThreadRegistry in core/adapters.hpp (append-only, ids never
// recycled — the strict fixed-N reading), this registry recycles. The
// correctness obligation that makes recycling safe here is the lock table's:
// a lease may be released only when the thread holds no stripe and has no
// attempt in flight, which the RAII types enforce by construction (guards
// borrow the session, and the session's lease outlives them).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"
#include "aml/pal/edges.hpp"

namespace aml::table {

class ThreadRegistry {
 public:
  static constexpr std::uint32_t kNoId = ~std::uint32_t{0};

  explicit ThreadRegistry(std::uint32_t max_threads)
      : max_threads_(max_threads),
        words_((max_threads + kBits - 1) / kBits) {
    AML_ASSERT(max_threads >= 1, "registry needs at least one slot");
  }

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  /// Lease a free id, or kNoId when all max_threads slots are live. Lock-free:
  /// each claim is one successful CAS; a failed CAS means another thread
  /// claimed a bit in the same word and we rescan that word.
  std::uint32_t try_lease() {
    // Start the scan at a rotating word to spread concurrent leasers across
    // the bitmap instead of stampeding word 0.
    const std::uint32_t nwords = static_cast<std::uint32_t>(words_.size());
    const std::uint32_t start =
        scan_hint_.fetch_add(1, std::memory_order_relaxed) % nwords;  // AML_RELAXED(scan start hint only)
    for (std::uint32_t i = 0; i < nwords; ++i) {
      const std::uint32_t wi = (start + i) % nwords;
      auto& word = words_[wi].bits;
      std::uint64_t v =
          word.load(std::memory_order_relaxed);  // AML_RELAXED(speculative; revalidated by the claim CAS)
      for (;;) {
        const std::uint64_t free = ~v & valid_mask(wi);
        if (free == 0) break;  // word full; try the next one
        const std::uint32_t bit =
            static_cast<std::uint32_t>(std::countr_zero(free));
        // Acquire half: claiming a recycled id imports the releaser's
        // fetch_and, so nothing from the previous lease's passages is
        // reordered into ours. Release half pairs with is_live/live probes.
        if (word.compare_exchange_weak(  // AML_X_EDGE(table.tid_lease) AML_V_EDGE(table.tid_lease)
                v, v | (std::uint64_t{1} << bit), std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          return wi * kBits + bit;
        }
        // v was reloaded by the failed CAS; rescan this word.
      }
    }
    return kNoId;
  }

  /// Return a leased id. The caller must own the lease and hold no lock
  /// keyed by it.
  void release(std::uint32_t id) {
    AML_ASSERT(id < max_threads_, "release of an out-of-range id");
    auto& word = words_[id / kBits].bits;
    const std::uint64_t mask = std::uint64_t{1} << (id % kBits);
    // Release half publishes everything the leaseholder did under this id
    // to the next claimer of the recycled slot.
    const std::uint64_t prev =
        word.fetch_and(~mask, std::memory_order_acq_rel);  // AML_V_EDGE(table.tid_lease)
    AML_ASSERT((prev & mask) != 0, "release of an id that is not live");
  }

  std::uint32_t max_threads() const { return max_threads_; }

  /// Number of currently live leases (linear scan; diagnostics only).
  std::uint32_t live() const {
    std::uint32_t total = 0;
    for (const auto& w : words_) {
      total += static_cast<std::uint32_t>(
          std::popcount(w.bits.load(std::memory_order_acquire)));  // AML_X_EDGE(table.tid_lease)
    }
    return total;
  }

  bool is_live(std::uint32_t id) const {
    if (id >= max_threads_) return false;
    const std::uint64_t v =
        words_[id / kBits].bits.load(std::memory_order_acquire);  // AML_X_EDGE(table.tid_lease)
    return (v >> (id % kBits)) & 1;
  }

  /// RAII lease: releases in the destructor. Move-only; default-constructed
  /// or moved-from leases hold nothing.
  class Lease {
   public:
    Lease() = default;
    Lease(ThreadRegistry& registry, std::uint32_t id)
        : registry_(&registry), id_(id) {}
    Lease(Lease&& o) noexcept
        : registry_(std::exchange(o.registry_, nullptr)),
          id_(std::exchange(o.id_, kNoId)) {}
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        reset();
        registry_ = std::exchange(o.registry_, nullptr);
        id_ = std::exchange(o.id_, kNoId);
      }
      return *this;
    }
    ~Lease() { reset(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool valid() const { return registry_ != nullptr; }
    explicit operator bool() const { return valid(); }
    std::uint32_t id() const {
      AML_ASSERT(valid(), "id() on an empty lease");
      return id_;
    }

    void reset() {
      if (registry_ != nullptr) {
        registry_->release(id_);
        registry_ = nullptr;
        id_ = kNoId;
      }
    }

   private:
    ThreadRegistry* registry_ = nullptr;
    std::uint32_t id_ = kNoId;
  };

  /// Lease as RAII. An invalid lease (registry full) is a capacity-planning
  /// error for a lock service, so callers check valid(); acquire() below is
  /// the asserting flavor for code that sized the registry to its pool.
  Lease try_acquire() {
    const std::uint32_t id = try_lease();
    if (id == kNoId) return Lease{};
    return Lease{*this, id};
  }

  Lease acquire() {
    Lease lease = try_acquire();
    AML_ASSERT(lease.valid(), "ThreadRegistry exhausted: more live threads "
                              "than max_threads");
    return lease;
  }

 private:
  static constexpr std::uint32_t kBits = 64;

  /// Bits of word `wi` that correspond to real slots (the last word may be
  /// partial).
  std::uint64_t valid_mask(std::uint32_t wi) const {
    const std::uint32_t lo = wi * kBits;
    const std::uint32_t hi =
        lo + kBits <= max_threads_ ? kBits : max_threads_ - lo;
    return hi == kBits ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << hi) - 1;
  }

  struct alignas(pal::kCacheLine) BitWord {
    std::atomic<std::uint64_t> bits{0};
  };

  std::uint32_t max_threads_;
  std::vector<BitWord> words_;
  std::atomic<std::uint32_t> scan_hint_{0};
};

}  // namespace aml::table
