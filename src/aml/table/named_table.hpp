// NamedLockTable: the deployable named-lock service — LockTable on native
// hardware, plus the operational pieces a lock manager needs:
//
//   * ThreadRegistry integration: OS threads open a Session (RAII lease of a
//     dense id), so thread pools need no manual id bookkeeping and ids are
//     recycled as workers come and go;
//   * deadline-based acquisition: try_acquire_for/until arm a TimerWheel
//     deadline that raises the abort signal, and the lock's bounded-abort
//     guarantee turns that into a bounded-latency negative answer;
//   * multi-key transactions: acquire_all takes the distinct stripes in
//     ascending order (deadlock-free among acquire_all users); the timed
//     variant optionally slices its budget into shorter attempts, releasing
//     everything and retrying between slices — deadline-abort as the
//     deadlock-avoidance primitive against callers that do not follow the
//     stripe order;
//   * per-stripe observability: with the obs::Metrics sink type each stripe
//     gets its own sink, so contention / abort / hand-off stats roll up per
//     shard and hot key ranges are visible.
//
// Usage:
//
//   aml::table::NamedLockTable table({.max_threads = 64, .stripes = 32});
//   // per worker thread (or per pooled task):
//   auto session = table.open_session();
//   if (auto g = session.try_acquire_for("order:1542", 2ms)) {
//     ... critical section for that key ...
//   }                                  // guard releases on scope exit
//   auto tx = session.acquire_all({"acct:alice", "acct:bob"});
//   ... transfer ...                   // tx releases all stripes
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "aml/core/abortable_lock.hpp"
#include "aml/core/adapters.hpp"
#include "aml/model/native.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/backoff.hpp"
#include "aml/pal/config.hpp"
#include "aml/table/lock_table.hpp"
#include "aml/table/thread_registry.hpp"

namespace aml::table {

struct TableConfig {
  std::uint32_t max_threads = 64;  ///< concurrent sessions (registry slots)
  std::uint32_t stripes = 32;      ///< rounded up to a power of two
  std::uint32_t tree_width = 64;
};

template <typename Metrics = obs::NullMetrics>
class BasicNamedLockTable {
 public:
  using Clock = TimerWheel::Clock;
  using Table = LockTable<model::NativeModel, Metrics>;
  using MetricsSink = Metrics;

  explicit BasicNamedLockTable(TableConfig config = {})
      : model_(config.max_threads),
        table_(model_, {.max_threads = config.max_threads,
                        .stripes = config.stripes,
                        .tree_width = config.tree_width}),
        registry_(config.max_threads),
        signals_(config.max_threads) {
    if constexpr (Metrics::kEnabled) {
      sinks_.reserve(table_.stripe_count());
      for (std::uint32_t s = 0; s < table_.stripe_count(); ++s) {
        sinks_.push_back(std::make_unique<Metrics>(config.max_threads));
        table_.set_stripe_metrics(s, sinks_.back().get());
      }
    }
  }

  BasicNamedLockTable(const BasicNamedLockTable&) = delete;
  BasicNamedLockTable& operator=(const BasicNamedLockTable&) = delete;

  class Session;
  class Guard;
  class MultiGuard;

  /// Lease a dense id for the calling thread. The Session must not outlive
  /// the table, and all guards must be released (they are, by RAII scoping)
  /// before the Session is destroyed. Aborts if more than max_threads
  /// sessions are live — size the registry to the pool.
  Session open_session() { return Session(*this, registry_.acquire()); }

  /// Sessions currently live (diagnostics).
  std::uint32_t live_sessions() const { return registry_.live(); }
  std::uint32_t stripe_count() const { return table_.stripe_count(); }
  std::uint32_t max_threads() const { return registry_.max_threads(); }

  std::uint32_t stripe_of(std::uint64_t key) const {
    return table_.stripe_of(key);
  }
  std::uint32_t stripe_of(std::string_view key) const {
    return table_.stripe_of(key);
  }

  /// Per-stripe sink (enabled flavor only; see ObservedNamedLockTable).
  Metrics& stripe_metrics(std::uint32_t s)
    requires(Metrics::kEnabled)
  {
    return *sinks_[s];
  }

  /// A session: the thread's dense id plus the signal slot timed attempts
  /// use. Move-only; releasing it returns the id to the registry.
  class Session {
   public:
    Session(Session&&) = default;
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    Session& operator=(Session&&) = delete;

    std::uint32_t id() const { return lease_.id(); }

    // --- single key -------------------------------------------------------

    /// Blocking acquisition (starvation-free).
    template <typename Key>
    Guard acquire(Key key) {
      const std::uint32_t s = owner_->table_.stripe_of(key);
      const bool ok = owner_->table_.enter_stripe(id(), s, nullptr);
      AML_ASSERT(ok, "unsignalled enter cannot abort");
      return Guard(*owner_, id(), s, true);
    }

    /// Deadline-bounded acquisition: empty optional iff the deadline passed
    /// before the lock was granted (bounded abort bounds the overshoot).
    template <typename Key>
    std::optional<Guard> try_acquire_until(Key key, Clock::time_point when) {
      const std::uint32_t s = owner_->table_.stripe_of(key);
      if (!owner_->timed_enter(id(), s, when)) return std::nullopt;
      return Guard(*owner_, id(), s, true);
    }

    template <typename Key, typename Rep, typename Period>
    std::optional<Guard> try_acquire_for(
        Key key, std::chrono::duration<Rep, Period> budget) {
      return try_acquire_until(key, Clock::now() + budget);
    }

    // --- multiple keys ----------------------------------------------------

    /// Blocking multi-key acquisition in ascending stripe order
    /// (deadlock-free among acquire_all/try_acquire_all users).
    template <typename Key>
    MultiGuard acquire_all(const std::vector<Key>& keys) {
      std::vector<std::uint32_t> order = owner_->table_.plan(keys);
      const bool ok = owner_->table_.enter_all(id(), order, nullptr);
      AML_ASSERT(ok, "unsignalled enter_all cannot abort");
      return MultiGuard(*owner_, id(), std::move(order), true);
    }

    /// Timed multi-key acquisition. The budget is spent in attempts of at
    /// most `slice` (0 = one attempt with the whole budget): each attempt
    /// arms the deadline, acquires in stripe order, and on abort releases
    /// everything before retrying. Slicing exists to break deadlocks with
    /// callers that hold stripes in a non-conforming order — the periodic
    /// full release lets them through. Empty optional iff the overall
    /// deadline passed without a complete acquisition.
    template <typename Key, typename Rep, typename Period>
    std::optional<MultiGuard> try_acquire_all_for(
        const std::vector<Key>& keys,
        std::chrono::duration<Rep, Period> budget,
        std::chrono::nanoseconds slice = std::chrono::nanoseconds{0}) {
      const Clock::time_point deadline = Clock::now() + budget;
      std::vector<std::uint32_t> order = owner_->table_.plan(keys);
      pal::Backoff backoff;
      for (;;) {
        const Clock::time_point now = Clock::now();
        if (now >= deadline && !order.empty()) return std::nullopt;
        Clock::time_point attempt_deadline = deadline;
        if (slice.count() > 0 && now + slice < deadline) {
          attempt_deadline = now + slice;
        }
        if (owner_->timed_enter_all(id(), order, attempt_deadline)) {
          return MultiGuard(*owner_, id(), std::move(order), true);
        }
        if (attempt_deadline >= deadline) return std::nullopt;
        backoff.pause();
      }
    }

    // --- escape hatches ---------------------------------------------------

    /// Abortable acquisition with a caller-managed signal (e.g. a deadlock
    /// detector or priority manager instead of a deadline).
    template <typename Key>
    std::optional<Guard> try_acquire(Key key, const AbortSignal& signal) {
      const std::uint32_t s = owner_->table_.stripe_of(key);
      if (!owner_->table_.enter_stripe(id(), s, signal.flag())) {
        return std::nullopt;
      }
      return Guard(*owner_, id(), s, true);
    }

   private:
    friend class BasicNamedLockTable;
    Session(BasicNamedLockTable& owner, ThreadRegistry::Lease lease)
        : owner_(&owner), lease_(std::move(lease)) {}

    BasicNamedLockTable* owner_;
    ThreadRegistry::Lease lease_;
  };

  /// RAII holder of one stripe.
  class Guard {
   public:
    Guard(Guard&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)), pid_(o.pid_),
          stripe_(o.stripe_) {}
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() { release(); }

    std::uint32_t stripe() const { return stripe_; }

    void release() {
      if (owner_ != nullptr) {
        owner_->table_.exit_stripe(pid_, stripe_);
        owner_ = nullptr;
      }
    }

   private:
    friend class Session;
    Guard(BasicNamedLockTable& owner, std::uint32_t pid, std::uint32_t s,
          bool /*owns*/)
        : owner_(&owner), pid_(pid), stripe_(s) {}

    BasicNamedLockTable* owner_;
    std::uint32_t pid_;
    std::uint32_t stripe_;
  };

  /// RAII holder of a sorted set of stripes (released in reverse order).
  class MultiGuard {
   public:
    MultiGuard(MultiGuard&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)), pid_(o.pid_),
          order_(std::move(o.order_)) {}
    MultiGuard(const MultiGuard&) = delete;
    MultiGuard& operator=(const MultiGuard&) = delete;
    MultiGuard& operator=(MultiGuard&&) = delete;
    ~MultiGuard() { release(); }

    const std::vector<std::uint32_t>& stripes() const { return order_; }

    void release() {
      if (owner_ != nullptr) {
        owner_->table_.exit_all(pid_, order_);
        owner_ = nullptr;
      }
    }

   private:
    friend class Session;
    MultiGuard(BasicNamedLockTable& owner, std::uint32_t pid,
               std::vector<std::uint32_t> order, bool /*owns*/)
        : owner_(&owner), pid_(pid), order_(std::move(order)) {}

    BasicNamedLockTable* owner_;
    std::uint32_t pid_;
    std::vector<std::uint32_t> order_;
  };

 private:
  friend class Session;

  /// One timed attempt on one stripe.
  bool timed_enter(std::uint32_t pid, std::uint32_t s,
                   Clock::time_point when) {
    AbortSignal& signal = signals_[pid];
    signal.reset();
    const TimerWheel::Token token = wheel_.arm(signal, when);
    const bool ok = table_.enter_stripe(pid, s, signal.flag());
    wheel_.cancel(token);
    return ok;
  }

  /// One timed all-or-nothing attempt on a stripe set.
  bool timed_enter_all(std::uint32_t pid,
                       const std::vector<std::uint32_t>& order,
                       Clock::time_point when) {
    AbortSignal& signal = signals_[pid];
    signal.reset();
    const TimerWheel::Token token = wheel_.arm(signal, when);
    const bool ok = table_.enter_all(pid, order, signal.flag());
    wheel_.cancel(token);
    return ok;
  }

  model::NativeModel model_;
  Table table_;
  ThreadRegistry registry_;
  std::deque<AbortSignal> signals_;  ///< one per dense id; timed ops only
  TimerWheel wheel_;
  std::vector<std::unique_ptr<Metrics>> sinks_;  ///< enabled flavor only
};

/// Production default: uninstrumented.
using NamedLockTable = BasicNamedLockTable<>;

/// Instrumented flavor: every stripe carries its own obs::Metrics sink,
/// reachable via stripe_metrics(s).
using ObservedNamedLockTable = BasicNamedLockTable<obs::Metrics>;

}  // namespace aml::table
