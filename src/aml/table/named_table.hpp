// NamedLockTable: the deployable named-lock service — LockTable on native
// hardware, plus the operational pieces a lock manager needs:
//
//   * ThreadRegistry integration: OS threads open a Session (RAII lease of a
//     dense id), so thread pools need no manual id bookkeeping and ids are
//     recycled as workers come and go;
//   * deadline-based acquisition: try_acquire_for/until arm a TimerWheel
//     deadline that raises the abort signal, and the lock's bounded-abort
//     guarantee turns that into a bounded-latency negative answer;
//   * multi-key transactions: acquire_all takes the distinct stripes in
//     a global total order (deadlock-free among acquire_all users); the
//     timed variant optionally slices its budget into shorter attempts,
//     releasing everything and retrying between slices — deadline-abort as
//     the deadlock-avoidance primitive against callers that do not follow
//     the stripe order;
//   * per-stripe observability: with the obs::Metrics sink type each stripe
//     gets its own sink, so contention / abort / hand-off stats roll up per
//     shard and hot key ranges are visible;
//   * contention-adaptive striping: with `auto_grow` enabled the table
//     samples its always-on StripeStats every `grow_check_interval`
//     operations and doubles the stripe count when any stripe's concurrent
//     attempt depth reaches `grow_inflight_threshold` — the service-layer
//     mirror of the lock's adaptive RMR bound. Guards address *keys* (their
//     hashes), not stripe indices, so every guard stays valid across a grow:
//     the underlying LockTable drains old-generation holders via per-epoch
//     refcounts and a key never changes stripe mid-hold;
//   * algorithm-polymorphic stripes: TableConfig::algo picks the stripe lock
//     (paper adaptive vs Jayanti & Jayanti constant-amortized-RMR), and with
//     TableConfig::hybrid enabled every (auto-)grow re-chooses per stripe
//     from observed abort rates — see lock_table.hpp's header comment.
//
// Usage:
//
//   aml::table::NamedLockTable table({.max_threads = 64, .stripes = 32});
//   // per worker thread (or per pooled task):
//   auto session = table.open_session();
//   if (auto g = session.try_acquire_for("order:1542", 2ms)) {
//     ... critical section for that key ...
//   }                                  // guard releases on scope exit
//   auto tx = session.acquire_all({"acct:alice", "acct:bob"});
//   ... transfer ...                   // tx releases all stripes
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "aml/core/abortable_lock.hpp"
#include "aml/core/adapters.hpp"
#include "aml/model/native.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/backoff.hpp"
#include "aml/pal/config.hpp"
#include "aml/table/lock_table.hpp"
#include "aml/table/thread_registry.hpp"

namespace aml::table {

struct TableConfig {
  std::uint32_t max_threads = 64;  ///< concurrent sessions (registry slots)
  std::uint32_t stripes = 32;      ///< rounded up to a power of two
  std::uint32_t tree_width = 64;
  // --- contention-adaptive striping (see header comment) -----------------
  bool auto_grow = false;           ///< sample stats and double when hot
  std::uint32_t max_stripes = 1024; ///< auto-grow ceiling
  std::uint32_t grow_inflight_threshold = 4;  ///< stripe depth = "hot"
  std::uint32_t grow_check_interval = 64;     ///< ops between policy checks
  // --- algorithm-polymorphic stripes (see lock_table.hpp) ----------------
  StripeAlgo algo = StripeAlgo::kPaper;  ///< uniform default stripe lock
  HybridPolicy hybrid{};  ///< per-stripe re-choice on every (auto-)grow
};

template <typename Metrics = obs::NullMetrics>
class BasicNamedLockTable {
 public:
  using Clock = TimerWheel::Clock;
  using Table = LockTable<model::NativeModel, Metrics>;
  using MetricsSink = Metrics;
  using StripeStatsView = typename Table::StripeStatsView;

  explicit BasicNamedLockTable(TableConfig config = {})
      : config_(config), model_(config.max_threads),
        table_(model_, {.max_threads = config.max_threads,
                        .stripes = config.stripes,
                        .tree_width = config.tree_width,
                        .algo = config.algo,
                        .hybrid = config.hybrid}),
        registry_(config.max_threads),
        signals_(config.max_threads) {
    if constexpr (Metrics::kEnabled) {
      std::lock_guard<std::mutex> lk(sinks_mu_);
      for (std::uint32_t s = 0; s < table_.stripe_count(); ++s) {
        sinks_.push_back(std::make_unique<Metrics>(config.max_threads));
        table_.set_stripe_metrics(s, sinks_.back().get());
      }
    }
  }

  BasicNamedLockTable(const BasicNamedLockTable&) = delete;
  BasicNamedLockTable& operator=(const BasicNamedLockTable&) = delete;

  class Session;
  class Guard;
  class MultiGuard;

  /// Lease a dense id for the calling thread. The Session must not outlive
  /// the table, and all guards must be released (they are, by RAII scoping)
  /// before the Session is destroyed. Aborts if more than max_threads
  /// sessions are live — size the registry to the pool.
  Session open_session() { return Session(*this, registry_.acquire()); }

  /// Sessions currently live (diagnostics).
  std::uint32_t live_sessions() const { return registry_.live(); }
  std::uint32_t stripe_count() const { return table_.stripe_count(); }
  std::uint32_t max_threads() const { return registry_.max_threads(); }

  /// Stripe-array epoch: 0 at construction, +1 per (auto-)grow.
  std::uint64_t epoch() const { return table_.epoch(); }
  /// True while the previous stripe generation still drains.
  bool draining() const { return table_.draining(); }

  /// Always-on contention counters of current-generation stripe `s`.
  StripeStatsView stripe_stats(std::uint32_t s) const {
    return table_.stripe_stats(s);
  }
  /// Largest concurrent-attempt high-water mark across current stripes.
  std::uint32_t peak_inflight() const { return table_.peak_inflight(); }

  std::uint32_t stripe_of(std::uint64_t key) const {
    return table_.stripe_of(key);
  }
  std::uint32_t stripe_of(std::string_view key) const {
    return table_.stripe_of(key);
  }

  /// Algorithm of current-generation stripe `s` (may change across a grow
  /// when TableConfig::hybrid is enabled).
  StripeAlgo stripe_algo(std::uint32_t s) const {
    return table_.stripe_algo(s);
  }

  /// Per-stripe sink (enabled flavor only; see ObservedNamedLockTable).
  /// Sinks are allocated per *stripe slot* and survive grows: after a
  /// resize, stripe s of the new generation shares sink s with the old
  /// generation's stripe s, so a shard's history stays in one sink.
  Metrics& stripe_metrics(std::uint32_t s)
    requires(Metrics::kEnabled)
  {
    std::lock_guard<std::mutex> lk(sinks_mu_);
    return *sinks_[s];
  }

  /// Run the grow policy now (auto_grow normally does this every
  /// grow_check_interval operations). Returns true iff the table grew.
  bool try_grow() { return grow_step(); }

  /// A session: the thread's dense id plus the signal slot timed attempts
  /// use. Move-only; releasing it returns the id to the registry.
  class Session {
   public:
    Session(Session&&) = default;
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    Session& operator=(Session&&) = delete;

    std::uint32_t id() const { return lease_.id(); }

    // --- single key -------------------------------------------------------

    /// Blocking acquisition (starvation-free).
    template <typename Key>
    Guard acquire(Key key) {
      const std::uint64_t h = Table::hash_of(key);
      owner_->note_op();
      const bool ok = owner_->table_.enter_hash(id(), h, nullptr);
      AML_ASSERT(ok, "unsignalled enter cannot abort");
      return Guard(*owner_, id(), h);
    }

    /// Deadline-bounded acquisition: empty optional iff the deadline passed
    /// before the lock was granted (bounded abort bounds the overshoot).
    template <typename Key>
    std::optional<Guard> try_acquire_until(Key key, Clock::time_point when) {
      const std::uint64_t h = Table::hash_of(key);
      owner_->note_op();
      if (!owner_->timed_enter(id(), h, when)) return std::nullopt;
      return Guard(*owner_, id(), h);
    }

    template <typename Key, typename Rep, typename Period>
    std::optional<Guard> try_acquire_for(
        Key key, std::chrono::duration<Rep, Period> budget) {
      return try_acquire_until(key, Clock::now() + budget);
    }

    // --- multiple keys ----------------------------------------------------

    /// Blocking multi-key acquisition in a global total stripe order
    /// (deadlock-free among acquire_all/try_acquire_all users).
    template <typename Key>
    MultiGuard acquire_all(const std::vector<Key>& keys) {
      std::vector<std::uint64_t> hashes = owner_->table_.plan_hashes(keys);
      owner_->note_op();
      const bool ok = owner_->table_.enter_hashes(id(), hashes, nullptr);
      AML_ASSERT(ok, "unsignalled enter_hashes cannot abort");
      return MultiGuard(*owner_, id(), std::move(hashes));
    }

    /// Timed multi-key acquisition. The budget is spent in attempts of at
    /// most `slice` (0 = one attempt with the whole budget): each attempt
    /// arms the deadline, acquires in stripe order, and on abort releases
    /// everything before retrying. Slicing exists to break deadlocks with
    /// callers that hold stripes in a non-conforming order — the periodic
    /// full release lets them through.
    ///
    /// Contract:
    ///   * An empty key set succeeds vacuously and immediately, whatever the
    ///     budget (even zero or negative): a degenerate transaction has
    ///     nothing to wait for, so no deadline is armed and no grow check
    ///     runs. The returned guard holds nothing and releases nothing.
    ///   * With keys, a non-positive budget — or one that expires before
    ///     the acquisition completes — yields an empty optional; the call
    ///     never "succeeds for free" against an already-expired deadline.
    ///   * The call gives up only once Clock::now() has actually reached
    ///     the overall deadline: after a failed attempt the wall clock is
    ///     re-checked, so a final slice that lands exactly on the deadline
    ///     (or a timer that fires marginally early) cannot abandon budget
    ///     that still remains.
    template <typename Key, typename Rep, typename Period>
    std::optional<MultiGuard> try_acquire_all_for(
        const std::vector<Key>& keys,
        std::chrono::duration<Rep, Period> budget,
        std::chrono::nanoseconds slice = std::chrono::nanoseconds{0}) {
      std::vector<std::uint64_t> hashes = owner_->table_.plan_hashes(keys);
      if (hashes.empty()) {
        const bool ok = owner_->table_.enter_hashes(id(), hashes, nullptr);
        AML_ASSERT(ok, "empty acquisition cannot abort");
        return MultiGuard(*owner_, id(), std::move(hashes));
      }
      const Clock::time_point deadline = Clock::now() + budget;
      pal::Backoff backoff;
      for (;;) {
        const Clock::time_point now = Clock::now();
        if (now >= deadline) return std::nullopt;
        Clock::time_point attempt_deadline = deadline;
        if (slice.count() > 0 && now + slice < deadline) {
          attempt_deadline = now + slice;
        }
        owner_->note_op();
        if (owner_->timed_enter_all(id(), hashes, attempt_deadline)) {
          return MultiGuard(*owner_, id(), std::move(hashes));
        }
        if (Clock::now() >= deadline) return std::nullopt;
        backoff.pause();
      }
    }

    // --- escape hatches ---------------------------------------------------

    /// Abortable acquisition with a caller-managed signal (e.g. a deadlock
    /// detector or priority manager instead of a deadline).
    template <typename Key>
    std::optional<Guard> try_acquire(Key key, const AbortSignal& signal) {
      const std::uint64_t h = Table::hash_of(key);
      owner_->note_op();
      if (!owner_->table_.enter_hash(id(), h, signal.flag())) {
        return std::nullopt;
      }
      return Guard(*owner_, id(), h);
    }

   private:
    friend class BasicNamedLockTable;
    Session(BasicNamedLockTable& owner, ThreadRegistry::Lease lease)
        : owner_(&owner), lease_(std::move(lease)) {}

    BasicNamedLockTable* owner_;
    ThreadRegistry::Lease lease_;
  };

  /// RAII holder of one key's stripe. Identified by the key's hash, so the
  /// guard stays valid across auto-grow; stripe() reports the stripe index
  /// at acquisition time (diagnostics — it may be stale after a grow).
  class Guard {
   public:
    Guard(Guard&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)), pid_(o.pid_),
          hash_(o.hash_), stripe_(o.stripe_) {}
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() { release(); }

    std::uint32_t stripe() const { return stripe_; }
    std::uint64_t key_hash() const { return hash_; }

    void release() {
      if (owner_ != nullptr) {
        owner_->table_.exit_hash(pid_, hash_);
        owner_ = nullptr;
      }
    }

   private:
    friend class Session;
    Guard(BasicNamedLockTable& owner, std::uint32_t pid, std::uint64_t hash)
        : owner_(&owner), pid_(pid), hash_(hash),
          stripe_(static_cast<std::uint32_t>(hash) &
                  (owner.table_.stripe_count() - 1)) {}

    BasicNamedLockTable* owner_;
    std::uint32_t pid_;
    std::uint64_t hash_;
    std::uint32_t stripe_;
  };

  /// RAII holder of a key set (released in reverse stripe order).
  class MultiGuard {
   public:
    MultiGuard(MultiGuard&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)), pid_(o.pid_),
          hashes_(std::move(o.hashes_)), stripes_(std::move(o.stripes_)) {}
    MultiGuard(const MultiGuard&) = delete;
    MultiGuard& operator=(const MultiGuard&) = delete;
    MultiGuard& operator=(MultiGuard&&) = delete;
    ~MultiGuard() { release(); }

    /// Distinct stripe indices at acquisition time (diagnostics — may be
    /// stale after a grow; the hash set is the stable identity).
    const std::vector<std::uint32_t>& stripes() const { return stripes_; }
    const std::vector<std::uint64_t>& key_hashes() const { return hashes_; }

    void release() {
      if (owner_ != nullptr) {
        owner_->table_.exit_hashes(pid_, hashes_);
        owner_ = nullptr;
      }
    }

   private:
    friend class Session;
    MultiGuard(BasicNamedLockTable& owner, std::uint32_t pid,
               std::vector<std::uint64_t> hashes)
        : owner_(&owner), pid_(pid), hashes_(std::move(hashes)) {
      const std::uint32_t mask = owner.table_.stripe_count() - 1;
      stripes_.reserve(hashes_.size());
      for (const std::uint64_t h : hashes_) {
        stripes_.push_back(static_cast<std::uint32_t>(h) & mask);
      }
      std::sort(stripes_.begin(), stripes_.end());
      stripes_.erase(std::unique(stripes_.begin(), stripes_.end()),
                     stripes_.end());
    }

    BasicNamedLockTable* owner_;
    std::uint32_t pid_;
    std::vector<std::uint64_t> hashes_;
    std::vector<std::uint32_t> stripes_;
  };

 private:
  friend class Session;

  /// One timed attempt on one key.
  bool timed_enter(std::uint32_t pid, std::uint64_t hash,
                   Clock::time_point when) {
    AbortSignal& signal = signals_[pid];
    signal.reset();
    const TimerWheel::Token token = wheel_.arm(signal, when);
    const bool ok = table_.enter_hash(pid, hash, signal.flag());
    wheel_.cancel(token);
    return ok;
  }

  /// One timed all-or-nothing attempt on a key set.
  bool timed_enter_all(std::uint32_t pid,
                       const std::vector<std::uint64_t>& hashes,
                       Clock::time_point when) {
    AbortSignal& signal = signals_[pid];
    signal.reset();
    const TimerWheel::Token token = wheel_.arm(signal, when);
    const bool ok = table_.enter_hashes(pid, hashes, signal.flag());
    wheel_.cancel(token);
    return ok;
  }

  /// Called at the top of every acquisition: with auto_grow on, every
  /// grow_check_interval-th call runs the grow policy. The counter is a
  /// relaxed fetch_add — one shared cache line, but only touched once per
  /// acquisition and never inside a critical section.
  void note_op() {
    if (!config_.auto_grow) return;
    const std::uint64_t n =
        ops_.fetch_add(1, std::memory_order_relaxed) + 1;  // AML_RELAXED(grow-check pacing counter)
    if (n % config_.grow_check_interval == 0) grow_step();
  }

  bool grow_step() {
    const typename Table::GrowPolicy policy{
        .inflight_threshold = config_.grow_inflight_threshold,
        .max_stripes = config_.max_stripes};
    if constexpr (Metrics::kEnabled) {
      // Bind sinks inside resize()'s pre-publication hook so an observed
      // stripe is never visible without its sink. Sinks live in a deque
      // (stable addresses) keyed by stripe slot: slot s's sink is shared by
      // every generation's stripe s, preserving shard history across grows.
      return table_.maybe_grow(
          policy, [this](std::uint32_t s, typename Table::StripeLock& lock) {
            std::lock_guard<std::mutex> lk(sinks_mu_);
            while (sinks_.size() <= s) {
              sinks_.push_back(
                  std::make_unique<Metrics>(config_.max_threads));
            }
            lock.set_metrics(sinks_[s].get());
          });
    } else {
      return table_.maybe_grow(policy);
    }
  }

  TableConfig config_;
  model::NativeModel model_;
  Table table_;
  ThreadRegistry registry_;
  std::deque<AbortSignal> signals_;  ///< one per dense id; timed ops only
  TimerWheel wheel_;
  std::atomic<std::uint64_t> ops_{0};        ///< auto-grow sampling counter
  std::mutex sinks_mu_;                      ///< guards sinks_ growth
  std::deque<std::unique_ptr<Metrics>> sinks_;  ///< enabled flavor only
};

/// Production default: uninstrumented.
using NamedLockTable = BasicNamedLockTable<>;

/// Instrumented flavor: every stripe carries its own obs::Metrics sink,
/// reachable via stripe_metrics(s).
using ObservedNamedLockTable = BasicNamedLockTable<obs::Metrics>;

}  // namespace aml::table
