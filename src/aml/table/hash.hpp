// Key hashing for the lock table: arbitrary resource names (64-bit ids or
// strings) -> stripe indices.
//
// Requirements are modest but strict: deterministic across platforms and
// runs (bench JSON byte-stability depends on it), well-mixed low bits (the
// stripe index is a mask of the low bits, so every input bit must diffuse
// down), and no allocation. We use the finalizer of MurmurHash3 (fmix64) for
// integers and FNV-1a/64 followed by the same finalizer for strings; both
// are public-domain constants, avalanche well, and cost a handful of cycles.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "aml/pal/config.hpp"

namespace aml::table {

/// MurmurHash3's 64-bit finalizer: full avalanche, so masking low bits is a
/// sound stripe map.
constexpr std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

constexpr std::uint64_t key_hash(std::uint64_t key) { return fmix64(key); }

/// FNV-1a over the bytes, then fmix64 (FNV alone mixes high bits poorly).
constexpr std::uint64_t key_hash(std::string_view key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return fmix64(h);
}

/// Largest argument round_up_pow2 accepts: the result must itself fit in a
/// uint32_t, so n may not exceed 2^31.
inline constexpr std::uint32_t kMaxPow2 = std::uint32_t{1} << 31;

/// Smallest power of two >= n. Stripe counts are rounded up to a power of
/// two so the stripe map is a mask rather than a modulo. Requires
/// 1 <= n <= 2^31 (asserted): the former `while (p < n) p <<= 1` loop spun
/// forever above 2^31, where the shift wraps to zero before reaching n.
constexpr std::uint32_t round_up_pow2(std::uint32_t n) {
  AML_ASSERT(n >= 1 && n <= kMaxPow2, "round_up_pow2: n must be in [1, 2^31]");
  return std::bit_ceil(n);
}

}  // namespace aml::table
